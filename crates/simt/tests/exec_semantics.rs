//! End-to-end execution semantics of the SIMT engine: arithmetic, control
//! flow with divergence, shared memory + barriers, atomics, local memory,
//! error paths, and trace-event accuracy.

use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{Device, DeviceLimits};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::trace::{BranchEvent, InstrEvent, LaunchStats, MemEvent, TraceObserver};
use gwc_simt::SimtError;

/// out[i] = a[i] + b[i], guarded by i < n.
fn vec_add_kernel() -> gwc_simt::kernel::Kernel {
    let mut b = KernelBuilder::new("vec_add");
    let a = b.param_u32("a");
    let bb = b.param_u32("b");
    let out = b.param_u32("out");
    let n = b.param_u32("n");
    let i = b.global_tid_x();
    let p = b.lt_u32(i, n);
    b.if_(p, |b| {
        let ai = b.index(a, i, 4);
        let x = b.ld_global_f32(ai);
        let bi = b.index(bb, i, 4);
        let y = b.ld_global_f32(bi);
        let s = b.add_f32(x, y);
        let oi = b.index(out, i, 4);
        b.st_global_f32(oi, s);
    });
    b.build().unwrap()
}

#[test]
fn vec_add_exact() {
    let k = vec_add_kernel();
    let mut dev = Device::new();
    let n = 1000usize;
    let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
    let ha = dev.alloc_f32(&a);
    let hb = dev.alloc_f32(&b);
    let hout = dev.alloc_zeroed_f32(n);
    dev.launch(
        &k,
        &LaunchConfig::linear(n as u32, 128),
        &[ha.arg(), hb.arg(), hout.arg(), Value::U32(n as u32)],
    )
    .unwrap();
    let out = dev.read_f32(&hout);
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, 3.0 * i as f32);
    }
}

#[test]
fn guard_prevents_out_of_bounds() {
    // n = 100 with 128-thread blocks: threads 100..127 must not store.
    let k = vec_add_kernel();
    let mut dev = Device::new();
    let ha = dev.alloc_f32(&[1.0; 100]);
    let hb = dev.alloc_f32(&[1.0; 100]);
    let hout = dev.alloc_zeroed_f32(100);
    let stats = dev
        .launch(
            &k,
            &LaunchConfig::new(1, 128),
            &[ha.arg(), hb.arg(), hout.arg(), Value::U32(100)],
        )
        .unwrap();
    assert!(stats.warp_instrs > 0);
    assert_eq!(dev.read_f32(&hout), vec![2.0; 100]);
}

#[test]
fn if_else_divergent_paths_both_execute() {
    // out[i] = even(i) ? i * 10 : i + 1000
    let mut b = KernelBuilder::new("ie");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let bit = b.and_u32(i, Value::U32(1));
    let even = b.eq_u32(bit, Value::U32(0));
    let oi = b.index(out, i, 4);
    b.if_else(
        even,
        |b| {
            let v = b.mul_u32(i, Value::U32(10));
            b.st_global_u32(oi, v);
        },
        |b| {
            let v = b.add_u32(i, Value::U32(1000));
            b.st_global_u32(oi, v);
        },
    );
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(64);
    dev.launch(&k, &LaunchConfig::new(1, 64), &[hout.arg()])
        .unwrap();
    let out = dev.read_u32(&hout);
    for i in 0..64u32 {
        let expect = if i % 2 == 0 { i * 10 } else { i + 1000 };
        assert_eq!(out[i as usize], expect, "thread {i}");
    }
}

#[test]
fn divergent_loop_trip_counts() {
    // out[i] = sum of 0..i  (each lane loops a different number of times)
    let mut b = KernelBuilder::new("tri");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let acc = b.var_u32(Value::U32(0));
    b.for_range_u32(Value::U32(0), i, 1, |b, j| {
        let next = b.add_u32(acc, j);
        b.assign(acc, next);
    });
    let oi = b.index(out, i, 4);
    b.st_global_u32(oi, acc);
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(96);
    dev.launch(&k, &LaunchConfig::new(3, 32), &[hout.arg()])
        .unwrap();
    let out = dev.read_u32(&hout);
    for i in 0..96u32 {
        assert_eq!(out[i as usize], i * (i.wrapping_sub(1)) / 2, "thread {i}");
    }
}

#[test]
fn nested_divergence() {
    // out[i] = i%2==0 ? (i%4==0 ? 4 : 2) : 1
    let mut b = KernelBuilder::new("nest");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let m2 = b.rem_u32(i, Value::U32(2));
    let m4 = b.rem_u32(i, Value::U32(4));
    let p2 = b.eq_u32(m2, Value::U32(0));
    let p4 = b.eq_u32(m4, Value::U32(0));
    let oi = b.index(out, i, 4);
    b.if_else(
        p2,
        |b| {
            b.if_else(
                p4,
                |b| b.st_global_u32(oi, Value::U32(4)),
                |b| b.st_global_u32(oi, Value::U32(2)),
            );
        },
        |b| b.st_global_u32(oi, Value::U32(1)),
    );
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(32);
    dev.launch(&k, &LaunchConfig::new(1, 32), &[hout.arg()])
        .unwrap();
    let out = dev.read_u32(&hout);
    for (i, &v) in out.iter().enumerate() {
        let expect = if i % 2 == 0 {
            if i % 4 == 0 {
                4
            } else {
                2
            }
        } else {
            1
        };
        assert_eq!(v, expect, "thread {i}");
    }
}

#[test]
fn shared_memory_block_reduction() {
    // Classic tree reduction over one block of 256 values.
    let n: u32 = 256;
    let mut b = KernelBuilder::new("reduce");
    let input = b.param_u32("in");
    let output = b.param_u32("out");
    let smem = b.alloc_shared(n * 4);
    let tid = b.var_u32(b.tid_x());
    let gi = b.global_tid_x();
    let ia = b.index(input, gi, 4);
    let v = b.ld_global_f32(ia);
    let sa = b.index(smem, tid, 4);
    b.st_shared_f32(sa, v);
    b.barrier();
    // for (s = 128; s > 0; s >>= 1)
    let s = b.var_u32(Value::U32(n / 2));
    b.while_(
        |b| b.gt_u32(s, Value::U32(0)),
        |b| {
            let p = b.lt_u32(tid, s);
            b.if_(p, |b| {
                let other = b.add_u32(tid, s);
                let oa = b.index(smem, other, 4);
                let ov = b.ld_shared_f32(oa);
                let my = b.index(smem, tid, 4);
                let mv = b.ld_shared_f32(my);
                let sum = b.add_f32(mv, ov);
                b.st_shared_f32(my, sum);
            });
            b.barrier();
            let half = b.shr_u32(s, Value::U32(1));
            b.assign(s, half);
        },
    );
    let is_zero = b.eq_u32(tid, Value::U32(0));
    b.if_(is_zero, |b| {
        let r = b.index(smem, Value::U32(0), 4);
        let total = b.ld_shared_f32(r);
        let out0 = b.index(output, b.ctaid_x(), 4);
        b.st_global_f32(out0, total);
    });
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let data: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let expected: f32 = data.iter().sum();
    let hin = dev.alloc_f32(&data);
    let hout = dev.alloc_zeroed_f32(1);
    let stats = dev
        .launch(&k, &LaunchConfig::new(1, n), &[hin.arg(), hout.arg()])
        .unwrap();
    assert_eq!(dev.read_f32(&hout)[0], expected);
    // log2(256) = 8 loop iterations, each with one barrier, plus the first.
    assert_eq!(stats.barriers, 9);
}

#[test]
fn barrier_in_divergent_code_is_error() {
    let mut b = KernelBuilder::new("bad_bar");
    let tid = b.var_u32(b.tid_x());
    let p = b.lt_u32(tid, Value::U32(8));
    b.if_(p, |b| b.barrier());
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let err = dev.launch(&k, &LaunchConfig::new(1, 32), &[]).unwrap_err();
    assert!(matches!(err, SimtError::BarrierDivergence { .. }), "{err}");
}

#[test]
fn barrier_converged_multiwarp_ok() {
    // 4 warps all hit the same barrier; uniform condition per warp is fine.
    let mut b = KernelBuilder::new("bar_ok");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let oi = b.index(out, i, 4);
    b.st_global_u32(oi, Value::U32(1));
    b.barrier();
    let v = b.ld_global_u32(oi);
    let v2 = b.add_u32(v, Value::U32(1));
    b.st_global_u32(oi, v2);
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(128);
    let stats = dev
        .launch(&k, &LaunchConfig::new(1, 128), &[hout.arg()])
        .unwrap();
    assert_eq!(stats.barriers, 1);
    assert_eq!(dev.read_u32(&hout), vec![2u32; 128]);
}

#[test]
fn global_atomics_histogram() {
    // 1024 threads increment 16 bins.
    let mut b = KernelBuilder::new("hist");
    let bins = b.param_u32("bins");
    let i = b.global_tid_x();
    let bin = b.rem_u32(i, Value::U32(16));
    let ba = b.index(bins, bin, 4);
    b.atomic_add_global_u32(ba, Value::U32(1));
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let hbins = dev.alloc_zeroed_u32(16);
    dev.launch(&k, &LaunchConfig::new(8, 128), &[hbins.arg()])
        .unwrap();
    assert_eq!(dev.read_u32(&hbins), vec![64u32; 16]);
}

#[test]
fn shared_atomics_and_minmax() {
    let mut b = KernelBuilder::new("sh_atom");
    let out = b.param_u32("out");
    let s = b.alloc_shared(8);
    let tid = b.var_u32(b.tid_x());
    let zero = b.eq_u32(tid, Value::U32(0));
    b.if_(zero, |b| {
        let a0 = b.offset(s, 0);
        b.st_shared_u32(a0, Value::U32(0));
    });
    b.barrier();
    let a0 = b.offset(s, 0);
    b.atomic_add_shared_u32(a0, Value::U32(2));
    b.barrier();
    b.if_(zero, |b| {
        let a0 = b.offset(s, 0);
        let total = b.ld_shared_u32(a0);
        let oa = b.offset(out, 0);
        b.st_global_u32(oa, total);
    });
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(1);
    dev.launch(&k, &LaunchConfig::new(1, 64), &[hout.arg()])
        .unwrap();
    assert_eq!(dev.read_u32(&hout)[0], 128);
}

#[test]
fn atomic_max_and_cas() {
    let mut b = KernelBuilder::new("maxcas");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let m = b.offset(out, 0);
    b.atomic_max_global_u32(m, i);
    let c = b.offset(out, 4);
    // Only the first thread to see 0 wins the CAS.
    b.atomic_cas_global_u32(c, Value::U32(0), i);
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(2);
    dev.launch(&k, &LaunchConfig::new(2, 64), &[hout.arg()])
        .unwrap();
    let out = dev.read_u32(&hout);
    assert_eq!(out[0], 127, "atomic max of all thread ids");
    // CAS: thread 0 writes i=0 (no visible change), then the slot stays 0
    // until a nonzero thread succeeds — deterministically thread 1, since
    // lanes apply atomics in lane order and 0's write keeps the value 0.
    assert_eq!(out[1], 1);
}

#[test]
fn local_memory_is_private_per_thread() {
    let mut b = KernelBuilder::new("local");
    let out = b.param_u32("out");
    let lbuf = b.alloc_local(64);
    let i = b.global_tid_x();
    // Write thread id into local[0..16] and read back local[i % 16].
    b.for_range_u32(Value::U32(0), Value::U32(16), 1, |b, j| {
        let a = b.index(lbuf, j, 4);
        let v = b.add_u32(i, j);
        b.st_local_u32(a, v);
    });
    let sel = b.rem_u32(i, Value::U32(16));
    let a = b.index(lbuf, sel, 4);
    let v = b.ld_local_u32(a);
    let oi = b.index(out, i, 4);
    b.st_global_u32(oi, v);
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(64);
    dev.launch(&k, &LaunchConfig::new(2, 32), &[hout.arg()])
        .unwrap();
    let out = dev.read_u32(&hout);
    for i in 0..64u32 {
        assert_eq!(out[i as usize], i + i % 16, "thread {i}");
    }
}

#[test]
fn const_memory_broadcast() {
    let mut b = KernelBuilder::new("cmem");
    let table = b.param_u32("table");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let sel = b.rem_u32(i, Value::U32(4));
    let ta = b.index(table, sel, 4);
    let v = b.ld_const_f32(ta);
    let oi = b.index(out, i, 4);
    b.st_global_f32(oi, v);
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let htab = dev.alloc_const_f32(&[1.5, 2.5, 3.5, 4.5]);
    let hout = dev.alloc_zeroed_f32(32);
    dev.launch(&k, &LaunchConfig::new(1, 32), &[htab.arg(), hout.arg()])
        .unwrap();
    let out = dev.read_f32(&hout);
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, 1.5 + (i % 4) as f32);
    }
}

#[test]
fn ret_in_divergent_flow() {
    // Odd threads exit early; even threads still complete.
    let mut b = KernelBuilder::new("early");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let bit = b.and_u32(i, Value::U32(1));
    let odd = b.eq_u32(bit, Value::U32(1));
    b.if_(odd, |b| b.ret());
    let oi = b.index(out, i, 4);
    b.st_global_u32(oi, Value::U32(7));
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(64);
    dev.launch(&k, &LaunchConfig::new(1, 64), &[hout.arg()])
        .unwrap();
    let out = dev.read_u32(&hout);
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, if i % 2 == 0 { 7 } else { 0 }, "thread {i}");
    }
}

#[test]
fn out_of_bounds_reported_with_pc() {
    let mut b = KernelBuilder::new("oob");
    let out = b.param_u32("out");
    let a = b.offset(out, 0);
    b.st_global_u32(a, Value::U32(1));
    let k = b.build().unwrap();
    let mut dev = Device::new();
    // Pass an address far past the allocation.
    let err = dev
        .launch(&k, &LaunchConfig::new(1, 32), &[Value::U32(1 << 30)])
        .unwrap_err();
    match err {
        SimtError::OutOfBounds { space, .. } => assert_eq!(space, "global"),
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn integer_div_by_zero_reported() {
    let mut b = KernelBuilder::new("div0");
    let d = b.param_u32("d");
    let i = b.global_tid_x();
    b.div_u32(i, d);
    b.ret();
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let err = dev
        .launch(&k, &LaunchConfig::new(1, 32), &[Value::U32(0)])
        .unwrap_err();
    assert!(matches!(err, SimtError::DivideByZero { .. }));
}

#[test]
fn instruction_budget_enforced() {
    let mut b = KernelBuilder::new("long");
    let acc = b.var_u32(Value::U32(0));
    b.for_range_u32(Value::U32(0), Value::U32(1_000_000), 1, |b, j| {
        let n = b.add_u32(acc, j);
        b.assign(acc, n);
    });
    let k = b.build().unwrap();
    let mut dev = Device::new();
    dev.set_limits(DeviceLimits { instr_budget: 1000 });
    let err = dev.launch(&k, &LaunchConfig::new(1, 32), &[]).unwrap_err();
    assert!(matches!(
        err,
        SimtError::InstructionBudgetExceeded { budget: 1000 }
    ));
}

#[test]
fn launch_arg_validation() {
    let k = vec_add_kernel();
    let mut dev = Device::new();
    assert!(matches!(
        dev.launch(&k, &LaunchConfig::new(1, 32), &[]),
        Err(SimtError::BadLaunchArgs { .. })
    ));
    assert!(matches!(
        dev.launch(
            &k,
            &LaunchConfig::new(1, 32),
            &[Value::F32(0.0), Value::U32(0), Value::U32(0), Value::U32(0)]
        ),
        Err(SimtError::BadLaunchArgs { .. })
    ));
}

/// Observer recording branch outcomes and activity.
#[derive(Default)]
struct Recorder {
    branches: Vec<BranchEvent>,
    warp_instrs: u64,
    active_lanes: u64,
    mem_events: Vec<(u32, Vec<u32>)>,
    stats: Option<LaunchStats>,
}

impl TraceObserver for Recorder {
    fn on_instr(&mut self, e: &InstrEvent<'_>) {
        self.warp_instrs += 1;
        self.active_lanes += e.active_lanes() as u64;
    }
    fn on_branch(&mut self, e: &BranchEvent) {
        self.branches.push(*e);
    }
    fn on_mem(&mut self, e: &MemEvent<'_>) {
        self.mem_events.push((e.active, e.active_addrs().collect()));
    }
    fn on_launch_end(&mut self, stats: &LaunchStats) {
        self.stats = Some(*stats);
    }
}

#[test]
fn trace_observes_divergence_and_activity() {
    // Half the warp takes the branch.
    let mut b = KernelBuilder::new("half");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let p = b.lt_u32(i, Value::U32(16));
    b.if_(p, |b| {
        let oi = b.index(out, i, 4);
        b.st_global_u32(oi, Value::U32(1));
    });
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(32);
    let mut rec = Recorder::default();
    let stats = dev
        .launch_observed(&k, &LaunchConfig::new(1, 32), &[hout.arg()], &mut rec)
        .unwrap();

    assert_eq!(rec.branches.len(), 1);
    let br = rec.branches[0];
    assert!(br.divergent());
    // The builder emits bra_ifnot: lanes 16..32 take the skip.
    assert_eq!(br.taken, 0xFFFF_0000);
    assert_eq!(br.active, 0xFFFF_FFFF);

    // Store executed with only 16 lanes active.
    let (mask, addrs) = &rec.mem_events[0];
    assert_eq!(mask.count_ones(), 16);
    assert_eq!(addrs.len(), 16);

    assert_eq!(rec.stats, Some(stats));
    assert_eq!(stats.warp_instrs, rec.warp_instrs);
    assert!(
        rec.active_lanes < rec.warp_instrs * 32,
        "divergence visible"
    );
}

#[test]
fn deterministic_across_runs() {
    let k = vec_add_kernel();
    let run = || {
        let mut dev = Device::new();
        let a: Vec<f32> = (0..500).map(|i| i as f32 * 0.25).collect();
        let ha = dev.alloc_f32(&a);
        let hb = dev.alloc_f32(&a);
        let hout = dev.alloc_zeroed_f32(500);
        let stats = dev
            .launch(
                &k,
                &LaunchConfig::linear(500, 64),
                &[ha.arg(), hb.arg(), hout.arg(), Value::U32(500)],
            )
            .unwrap();
        (stats, dev.read_f32(&hout))
    };
    let (s1, o1) = run();
    let (s2, o2) = run();
    assert_eq!(s1, s2);
    assert_eq!(o1, o2);
}

#[test]
fn two_dimensional_launch_coordinates() {
    // out[y * W + x] = x * 100 + y over a 2-D grid of 2-D blocks.
    let mut b = KernelBuilder::new("coords");
    let out = b.param_u32("out");
    let w = b.param_u32("w");
    let x = b.global_tid_x();
    let y = b.global_tid_y();
    let row = b.mul_u32(y, w);
    let idx = b.add_u32(row, x);
    let v = b.mad_u32(x, Value::U32(100), y);
    let oa = b.index(out, idx, 4);
    b.st_global_u32(oa, v);
    let k = b.build().unwrap();

    let mut dev = Device::new();
    let width = 16u32;
    let height = 8u32;
    let hout = dev.alloc_zeroed_u32((width * height) as usize);
    dev.launch(
        &k,
        &LaunchConfig::new_2d(2, 2, 8, 4),
        &[hout.arg(), Value::U32(width)],
    )
    .unwrap();
    let out = dev.read_u32(&hout);
    for y in 0..height {
        for x in 0..width {
            assert_eq!(out[(y * width + x) as usize], x * 100 + y, "({x},{y})");
        }
    }
}

#[test]
fn sfu_and_float_ops() {
    let mut b = KernelBuilder::new("sfu");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let f = b.to_f32(i);
    let one = b.add_f32(f, Value::F32(1.0));
    let s = b.sqrt_f32(one);
    let r = b.mul_f32(s, s);
    let oi = b.index(out, i, 4);
    b.st_global_f32(oi, r);
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_f32(32);
    dev.launch(&k, &LaunchConfig::new(1, 32), &[hout.arg()])
        .unwrap();
    let out = dev.read_f32(&hout);
    for (i, &v) in out.iter().enumerate() {
        assert!((v - (i as f32 + 1.0)).abs() < 1e-4, "thread {i}: {v}");
    }
}

#[test]
fn partial_last_warp_masks_correctly() {
    // 40 threads: second warp has only 8 live lanes.
    let mut b = KernelBuilder::new("partial");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let oi = b.index(out, i, 4);
    b.st_global_u32(oi, Value::U32(5));
    let k = b.build().unwrap();
    let mut dev = Device::new();
    let hout = dev.alloc_zeroed_u32(40);
    let stats = dev
        .launch(&k, &LaunchConfig::new(1, 40), &[hout.arg()])
        .unwrap();
    assert_eq!(stats.warps, 2);
    assert_eq!(dev.read_u32(&hout), vec![5u32; 40]);
    // Thread-instr count reflects the partial warp.
    assert_eq!(stats.thread_instrs % 40, 0);
}
