//! Pearson correlation and correlated-dimension grouping.
//!
//! The paper's "correlated dimensionality reduction process" first inspects
//! which raw characteristics move together; PCA then collapses that
//! redundancy. [`correlated_groups`] exposes the groups directly so reports
//! can explain *why* the effective dimensionality is lower than the raw
//! characteristic count.

use crate::{Matrix, StatsError};

/// Pearson correlation matrix between the columns of `m`.
///
/// Zero-variance columns correlate `0.0` with everything (and `1.0` with
/// themselves) rather than producing NaN.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] when there are fewer than two rows.
pub fn correlation_matrix(m: &Matrix) -> Result<Matrix, StatsError> {
    if m.rows() < 2 {
        return Err(StatsError::Empty);
    }
    let cov = m.covariance()?;
    let n = m.cols();
    let mut corr = Matrix::identity(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let denom = (cov.get(i, i) * cov.get(j, j)).sqrt();
            let r = if denom > 0.0 {
                cov.get(i, j) / denom
            } else {
                0.0
            };
            corr.set(i, j, r);
            corr.set(j, i, r);
        }
    }
    Ok(corr)
}

/// Groups columns whose pairwise |r| exceeds `threshold`, using a
/// union-find over the correlation graph. Groups are returned sorted by
/// smallest member, singletons included, so the result is a partition of
/// all columns.
///
/// # Errors
///
/// Propagates errors from [`correlation_matrix`].
pub fn correlated_groups(m: &Matrix, threshold: f64) -> Result<Vec<Vec<usize>>, StatsError> {
    let corr = correlation_matrix(m)?;
    let n = m.cols();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if corr.get(i, j).abs() > threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }

    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = find(&mut parent, i);
        groups[r].push(i);
    }
    Ok(groups.into_iter().filter(|g| !g.is_empty()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = correlation_matrix(&m).unwrap();
        assert!((c.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlation() {
        let m = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]]).unwrap();
        let c = correlation_matrix(&m).unwrap();
        assert!((c.get(0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_columns_near_zero() {
        let m = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, -1.0],
            vec![3.0, 1.0],
            vec![4.0, -1.0],
        ])
        .unwrap();
        let c = correlation_matrix(&m).unwrap();
        assert!(c.get(0, 1).abs() < 0.5);
    }

    #[test]
    fn zero_variance_column_correlates_zero() {
        let m = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]).unwrap();
        let c = correlation_matrix(&m).unwrap();
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.get(1, 1), 1.0);
    }

    #[test]
    fn groups_partition_columns() {
        // Columns 0 and 1 correlated; 2 independent-ish; 3 anti-correlated with 0.
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 1.0, -1.0],
            vec![2.0, 4.1, -1.0, -2.0],
            vec![3.0, 6.0, 1.0, -3.0],
            vec![4.0, 7.9, -1.0, -4.0],
        ])
        .unwrap();
        let groups = correlated_groups(&m, 0.95).unwrap();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        let g0 = groups.iter().find(|g| g.contains(&0)).unwrap();
        assert!(g0.contains(&1), "0 and 1 should group: {groups:?}");
        assert!(
            g0.contains(&3),
            "anti-correlation groups by |r|: {groups:?}"
        );
        assert!(!g0.contains(&2));
    }

    #[test]
    fn needs_two_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(correlation_matrix(&m).is_err());
    }
}
