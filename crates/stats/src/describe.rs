//! Descriptive statistics helpers used across reports and evaluation metrics.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns 0.0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of strictly positive values. Returns 0.0 for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean requires positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns 0.0 for an
/// empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Relative absolute error of `estimate` with respect to `truth`.
/// Returns `|estimate|` when `truth` is zero.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        estimate.abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(9.0, 10.0), 0.1);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
    }
}
