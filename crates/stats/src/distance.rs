//! Distance metrics over observation vectors.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Condensed pairwise Euclidean distance matrix over the rows of a matrix,
/// returned as a full symmetric square matrix for simplicity.
pub fn pairwise_euclidean(m: &crate::Matrix) -> crate::Matrix {
    let n = m.rows();
    let mut d = crate::Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = euclidean(m.row(i), m.row(j));
            d.set(i, j, v);
            d.set(j, i, v);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn euclidean_345() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn manhattan_sum() {
        assert_eq!(manhattan(&[1.0, -1.0], &[-1.0, 2.0]), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let v = [1.5, -2.0, 0.25];
        assert_eq!(euclidean(&v, &v), 0.0);
        assert_eq!(manhattan(&v, &v), 0.0);
    }

    #[test]
    fn pairwise_is_symmetric_with_zero_diagonal() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]]).unwrap();
        let d = pairwise_euclidean(&m);
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 0), 5.0);
        assert_eq!(d.get(0, 2), 10.0);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
        }
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let pts = [
            vec![0.0, 1.0, 2.0],
            vec![-1.0, 3.0, 0.5],
            vec![2.0, 2.0, 2.0],
        ];
        let ab = euclidean(&pts[0], &pts[1]);
        let bc = euclidean(&pts[1], &pts[2]);
        let ac = euclidean(&pts[0], &pts[2]);
        assert!(ac <= ab + bc + 1e-12);
    }
}
