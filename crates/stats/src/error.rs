use std::error::Error;
use std::fmt;

/// Errors produced by the statistics toolkit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// Row lengths (or operand shapes) do not agree.
    ShapeMismatch {
        /// Shape that was expected, e.g. a column count.
        expected: usize,
        /// Shape that was found.
        found: usize,
    },
    /// The operation needs at least one observation/row.
    Empty,
    /// A value that must be finite was NaN or infinite.
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// The Jacobi eigensolver did not converge within its sweep budget.
    NoConvergence,
    /// A requested cluster count is out of range for the data.
    BadClusterCount {
        /// Requested k.
        k: usize,
        /// Number of observations available.
        n: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            StatsError::Empty => write!(f, "operation requires at least one row"),
            StatsError::NonFinite { row, col } => {
                write!(f, "non-finite value at ({row}, {col})")
            }
            StatsError::NoConvergence => write!(f, "eigensolver failed to converge"),
            StatsError::BadClusterCount { k, n } => {
                write!(f, "cluster count {k} invalid for {n} observations")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            StatsError::ShapeMismatch {
                expected: 3,
                found: 2,
            },
            StatsError::Empty,
            StatsError::NonFinite { row: 1, col: 2 },
            StatsError::NoConvergence,
            StatsError::BadClusterCount { k: 9, n: 3 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
