//! Agglomerative hierarchical clustering with dendrograms.
//!
//! The study uses hierarchical clustering to visualize how kernels group in
//! the PCA-reduced characteristic space: the dendrogram's linkage heights
//! show *how* similar two kernels are, not just which cluster they land in.

use crate::distance::euclidean;
use crate::{Matrix, StatsError};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

impl std::fmt::Display for Linkage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Linkage::Single => write!(f, "single"),
            Linkage::Complete => write!(f, "complete"),
            Linkage::Average => write!(f, "average"),
        }
    }
}

/// One merge step: clusters `a` and `b` join at distance `height`.
///
/// Cluster ids follow the SciPy convention: ids `0..n` are the original
/// observations (leaves); id `n + i` is the cluster created by merge `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// Result of hierarchical clustering: the full merge tree.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of original observations (leaves).
    pub fn leaves(&self) -> usize {
        self.n
    }

    /// The merge steps, in the order they occurred (ascending height for
    /// single/complete/average linkage on a metric space).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into exactly `k` clusters and returns a label per leaf.
    /// Labels are renumbered `0..k` in order of first appearance.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadClusterCount`] if `k` is 0 or exceeds the
    /// number of leaves.
    pub fn cut(&self, k: usize) -> Result<Vec<usize>, StatsError> {
        if k == 0 || k > self.n {
            return Err(StatsError::BadClusterCount { k, n: self.n });
        }
        // Applying the first n - k merges yields exactly k clusters.
        let mut parent: Vec<usize> = (0..(self.n + self.merges.len())).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (i, m) in self.merges.iter().take(self.n - k).enumerate() {
            let new_id = self.n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            labels.push(label);
        }
        Ok(labels)
    }

    /// Renders the dendrogram as ASCII art, one leaf per line, with merge
    /// heights shown on the internal nodes. `names[i]` labels leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `names.len()` differs from the leaf count.
    pub fn render(&self, names: &[String]) -> String {
        assert_eq!(names.len(), self.n, "one name per leaf required");
        if self.n == 1 {
            return format!("{}\n", names[0]);
        }
        // Recursive textual tree: children indented under their merge node.
        let mut out = String::new();
        let root = self.n + self.merges.len() - 1;
        self.render_node(root, 0, names, &mut out);
        out
    }

    fn render_node(&self, id: usize, depth: usize, names: &[String], out: &mut String) {
        let pad = "  ".repeat(depth);
        if id < self.n {
            out.push_str(&format!("{pad}- {}\n", names[id]));
        } else {
            let m = &self.merges[id - self.n];
            out.push_str(&format!("{pad}+ h={:.3} (n={})\n", m.height, m.size));
            self.render_node(m.a, depth + 1, names, out);
            self.render_node(m.b, depth + 1, names, out);
        }
    }
}

/// Runs agglomerative clustering on the rows of `data` with the given
/// linkage, using Euclidean distance and Lance–Williams updates.
///
/// # Errors
///
/// * [`StatsError::Empty`] when `data` has no rows.
/// * [`StatsError::NonFinite`] if `data` contains NaN/inf.
pub fn hierarchical(data: &Matrix, linkage: Linkage) -> Result<Dendrogram, StatsError> {
    if data.rows() == 0 {
        return Err(StatsError::Empty);
    }
    data.check_finite()?;
    let n = data.rows();

    // Active cluster set: (current cluster id, leaf count).
    let mut active: Vec<(usize, usize)> = (0..n).map(|i| (i, 1)).collect();
    // Distance matrix between active clusters, indexed by position in `active`.
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| euclidean(data.row(i), data.row(j)))
                .collect()
        })
        .collect();

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    while active.len() > 1 {
        // Find the closest pair (deterministic tie-break on indices).
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for (i, row) in dist.iter().enumerate().take(active.len()) {
            for (j, &d) in row.iter().enumerate().take(active.len()).skip(i + 1) {
                if d < best {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        let (id_a, size_a) = active[bi];
        let (id_b, size_b) = active[bj];
        let new_id = n + merges.len();
        let new_size = size_a + size_b;
        merges.push(Merge {
            a: id_a,
            b: id_b,
            height: best,
            size: new_size,
        });

        // Lance–Williams distance update from the merged cluster to others.
        let mut new_row = Vec::with_capacity(active.len());
        for (k, (&dak, &dbk)) in dist[bi]
            .iter()
            .zip(&dist[bj])
            .enumerate()
            .take(active.len())
        {
            if k == bi || k == bj {
                new_row.push(0.0);
                continue;
            }
            let d = match linkage {
                Linkage::Single => dak.min(dbk),
                Linkage::Complete => dak.max(dbk),
                Linkage::Average => (size_a as f64 * dak + size_b as f64 * dbk) / new_size as f64,
            };
            new_row.push(d);
        }

        // Replace cluster bi with the merged cluster; remove bj.
        active[bi] = (new_id, new_size);
        active.remove(bj);
        for k in 0..dist.len() {
            dist[bi][k] = new_row[k];
            dist[k][bi] = new_row[k];
        }
        // Drop row/col bj.
        dist.remove(bj);
        for row in &mut dist {
            row.remove(bj);
        }
        // Recompute bi index shift: if bj < bi, bi moved left by one.
        // (Handled implicitly because we removed after writing row bi when
        // bj > bi; assert the invariant.)
        debug_assert!(bi < bj);
    }

    Ok(Dendrogram { n, merges })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![5.0, 5.1],
        ])
        .unwrap()
    }

    #[test]
    fn merges_count() {
        let d = hierarchical(&two_blobs(), Linkage::Average).unwrap();
        assert_eq!(d.leaves(), 6);
        assert_eq!(d.merges().len(), 5);
    }

    #[test]
    fn cut_recovers_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = hierarchical(&two_blobs(), linkage).unwrap();
            let labels = d.cut(2).unwrap();
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[0], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[3], labels[5]);
            assert_ne!(labels[0], labels[3], "{linkage} linkage failed");
        }
    }

    #[test]
    fn cut_k_equals_n_gives_singletons() {
        let d = hierarchical(&two_blobs(), Linkage::Average).unwrap();
        let labels = d.cut(6).unwrap();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn cut_one_gives_single_cluster() {
        let d = hierarchical(&two_blobs(), Linkage::Single).unwrap();
        let labels = d.cut(1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn cut_rejects_bad_k() {
        let d = hierarchical(&two_blobs(), Linkage::Single).unwrap();
        assert!(d.cut(0).is_err());
        assert!(d.cut(7).is_err());
    }

    #[test]
    fn heights_nondecreasing_for_complete_linkage() {
        let d = hierarchical(&two_blobs(), Linkage::Complete).unwrap();
        let heights: Vec<f64> = d.merges().iter().map(|m| m.height).collect();
        for w in heights.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "heights {heights:?}");
        }
    }

    #[test]
    fn last_merge_contains_all_leaves() {
        let d = hierarchical(&two_blobs(), Linkage::Average).unwrap();
        assert_eq!(d.merges().last().unwrap().size, 6);
    }

    #[test]
    fn single_point_dendrogram() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let d = hierarchical(&m, Linkage::Average).unwrap();
        assert_eq!(d.merges().len(), 0);
        assert_eq!(d.cut(1).unwrap(), vec![0]);
    }

    #[test]
    fn render_mentions_all_names() {
        let d = hierarchical(&two_blobs(), Linkage::Average).unwrap();
        let names: Vec<String> = (0..6).map(|i| format!("k{i}")).collect();
        let art = d.render(&names);
        for n in &names {
            assert!(art.contains(n.as_str()), "missing {n} in:\n{art}");
        }
    }

    #[test]
    fn rejects_nan() {
        let mut m = two_blobs();
        m.set(0, 0, f64::NAN);
        assert!(hierarchical(&m, Linkage::Average).is_err());
    }
}
