//! K-means clustering with k-means++ seeding and BIC model selection.
//!
//! K-means complements the dendrogram: it yields compact clusters and a
//! natural representative (the member closest to the centroid), which is
//! exactly what the design-space evaluation metrics need.

use crate::distance::sq_euclidean;
use crate::{Matrix, SplitMix64, StatsError};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster label per observation, in `0..k`.
    pub labels: Vec<usize>,
    /// Cluster centroids (k × dims).
    pub centroids: Matrix,
    /// Sum of squared distances from each observation to its centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeans {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Index of the observation closest to each centroid (cluster
    /// representatives). Empty clusters yield no entry.
    pub fn representatives(&self, data: &Matrix) -> Vec<usize> {
        let k = self.k();
        let mut best: Vec<Option<(usize, f64)>> = vec![None; k];
        for (i, row) in data.iter_rows().enumerate() {
            let c = self.labels[i];
            let d = sq_euclidean(row, self.centroids.row(c));
            if best[c].is_none_or(|(_, bd)| d < bd) {
                best[c] = Some((i, d));
            }
        }
        best.into_iter().flatten().map(|(i, _)| i).collect()
    }

    /// Bayesian Information Criterion of this clustering under a spherical
    /// Gaussian model (SimPoint-style). Larger is better.
    pub fn bic(&self, data: &Matrix) -> f64 {
        let n = data.rows() as f64;
        let d = data.cols() as f64;
        let k = self.k() as f64;
        if n <= k {
            return f64::NEG_INFINITY;
        }
        // Maximum-likelihood variance estimate.
        let variance = (self.inertia / (n - k) / d).max(1e-12);
        let mut counts = vec![0usize; self.k()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        let mut log_likelihood = 0.0;
        for &c in &counts {
            if c == 0 {
                continue;
            }
            let cn = c as f64;
            log_likelihood += cn * cn.ln()
                - cn * n.ln()
                - cn * d / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
                - (cn - 1.0) * d / 2.0;
        }
        let free_params = k * (d + 1.0);
        log_likelihood - free_params / 2.0 * n.ln()
    }
}

/// Runs k-means with k-means++ seeding. Deterministic for a given seed.
///
/// # Errors
///
/// * [`StatsError::BadClusterCount`] if `k` is 0 or exceeds the row count.
/// * [`StatsError::NonFinite`] if `data` contains NaN/inf.
pub fn kmeans(data: &Matrix, k: usize, seed: u64) -> Result<KMeans, StatsError> {
    let n = data.rows();
    if k == 0 || k > n {
        return Err(StatsError::BadClusterCount { k, n });
    }
    data.check_finite()?;
    let dims = data.cols();
    let mut rng = SplitMix64::new(seed);

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids = Matrix::zeros(k, dims);
    let first = rng.next_below(n);
    for c in 0..dims {
        centroids.set(0, c, data.get(first, c));
    }
    let mut min_d2: Vec<f64> = (0..n)
        .map(|i| sq_euclidean(data.row(i), centroids.row(0)))
        .collect();
    for ci in 1..k {
        let total: f64 = min_d2.iter().sum();
        let pick = if total > 0.0 {
            let mut target = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, &d2) in min_d2.iter().enumerate() {
                target -= d2;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        } else {
            rng.next_below(n)
        };
        for c in 0..dims {
            centroids.set(ci, c, data.get(pick, c));
        }
        for (i, slot) in min_d2.iter_mut().enumerate() {
            let d2 = sq_euclidean(data.row(i), centroids.row(ci));
            if d2 < *slot {
                *slot = d2;
            }
        }
    }

    // --- Lloyd iterations --------------------------------------------------
    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..200 {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let (mut best_c, mut best_d) = (0usize, f64::INFINITY);
            for c in 0..k {
                let d = sq_euclidean(data.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            if *label != best_c {
                *label = best_c;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update.
        let mut sums = Matrix::zeros(k, dims);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            for c in 0..dims {
                sums.set(labels[i], c, sums.get(labels[i], c) + data.get(i, c));
            }
        }
        for (ci, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster at the point farthest from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(data.row(a), centroids.row(labels[a]));
                        let db = sq_euclidean(data.row(b), centroids.row(labels[b]));
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("n > 0");
                for c in 0..dims {
                    centroids.set(ci, c, data.get(far, c));
                }
            } else {
                for c in 0..dims {
                    centroids.set(ci, c, sums.get(ci, c) / count as f64);
                }
            }
        }
    }

    let inertia = (0..n)
        .map(|i| sq_euclidean(data.row(i), centroids.row(labels[i])))
        .sum();
    Ok(KMeans {
        labels,
        centroids,
        inertia,
        iterations,
    })
}

/// Runs k-means for each `k` in `1..=max_k` and returns the run with the
/// best BIC (SimPoint-style model selection).
///
/// # Errors
///
/// Propagates [`kmeans`] errors; `max_k` is clamped to the row count.
pub fn kmeans_best_bic(data: &Matrix, max_k: usize, seed: u64) -> Result<KMeans, StatsError> {
    let max_k = max_k.min(data.rows()).max(1);
    let mut best: Option<(f64, KMeans)> = None;
    for k in 1..=max_k {
        let run = kmeans(data, k, seed ^ (k as u64).wrapping_mul(0x9E37_79B9))?;
        let bic = run.bic(data);
        if best.as_ref().is_none_or(|(b, _)| bic > *b) {
            best = Some((bic, run));
        }
    }
    Ok(best.expect("at least one k evaluated").1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Matrix {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..5 {
                let jitter = i as f64 * 0.05;
                rows.push(vec![cx + jitter, cy - jitter]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_three_blobs() {
        let km = kmeans(&three_blobs(), 3, 42).unwrap();
        // All points in one blob share a label; labels differ across blobs.
        for blob in 0..3 {
            let base = km.labels[blob * 5];
            for i in 0..5 {
                assert_eq!(km.labels[blob * 5 + i], base);
            }
        }
        let mut distinct = km.labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = kmeans(&three_blobs(), 3, 7).unwrap();
        let b = kmeans(&three_blobs(), 3, 7).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = three_blobs();
        let i1 = kmeans(&data, 1, 3).unwrap().inertia;
        let i3 = kmeans(&data, 3, 3).unwrap().inertia;
        let i15 = kmeans(&data, 15, 3).unwrap().inertia;
        assert!(i3 < i1);
        assert!(i15 <= i3);
        assert!(i15 < 1e-9, "k = n should have ~zero inertia, got {i15}");
    }

    #[test]
    fn representatives_are_members_of_their_cluster() {
        let data = three_blobs();
        let km = kmeans(&data, 3, 11).unwrap();
        let reps = km.representatives(&data);
        assert_eq!(reps.len(), 3);
        for (c, &r) in reps.iter().enumerate() {
            assert_eq!(km.labels[r], c);
        }
    }

    #[test]
    fn bic_prefers_true_k() {
        let data = three_blobs();
        let best = kmeans_best_bic(&data, 6, 5).unwrap();
        assert_eq!(best.k(), 3, "BIC should select the 3 blobs");
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let data = three_blobs();
        let km = kmeans(&data, 1, 0).unwrap();
        for c in 0..2 {
            assert!((km.centroids.get(0, c) - data.col_mean(c)).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_k() {
        let data = three_blobs();
        assert!(kmeans(&data, 0, 1).is_err());
        assert!(kmeans(&data, 16, 1).is_err());
    }

    #[test]
    fn rejects_nan() {
        let mut data = three_blobs();
        data.set(0, 0, f64::INFINITY);
        assert!(kmeans(&data, 2, 1).is_err());
    }
}
