//! Statistics toolkit for workload characterization studies.
//!
//! This crate provides the numerical machinery behind the IISWC 2010
//! GPGPU workload characterization methodology:
//!
//! * [`Matrix`] — a small dense row-major matrix of `f64`,
//! * [`normalize`] — z-score / min-max column normalization,
//! * [`corr`] — Pearson correlation matrices and correlated-column grouping,
//! * [`pca`] — principal component analysis via cyclic Jacobi
//!   eigendecomposition of the covariance matrix,
//! * [`hclust`] — agglomerative hierarchical clustering with a dendrogram,
//! * [`kmeans`] — k-means (k-means++ seeding) with BIC model selection,
//! * [`describe`] — descriptive statistics helpers.
//!
//! Everything is implemented from scratch on `std` only, so results are
//! fully deterministic and reproducible across platforms.
//!
//! # Example
//!
//! ```
//! use gwc_stats::{Matrix, normalize::zscore, pca::Pca};
//!
//! # fn main() -> Result<(), gwc_stats::StatsError> {
//! // Four observations of three (partly redundant) variables.
//! let data = Matrix::from_rows(&[
//!     vec![1.0, 2.0, 1.0],
//!     vec![2.0, 4.0, 0.5],
//!     vec![3.0, 6.0, 1.5],
//!     vec![4.0, 8.0, 0.0],
//! ])?;
//! let (z, _stats) = zscore(&data);
//! let pca = Pca::fit(&z)?;
//! // Columns 0 and 1 are perfectly correlated: two PCs explain everything.
//! assert!(pca.variance_explained(2) > 0.999);
//! # Ok(())
//! # }
//! ```

pub mod corr;
pub mod describe;
pub mod distance;
pub mod hclust;
pub mod kmeans;
pub mod matrix;
pub mod normalize;
pub mod pca;

mod error;
mod rng;

pub use error::StatsError;
pub use matrix::{Matrix, MatrixBuilder};
pub(crate) use rng::SplitMix64;
