//! A small dense row-major `f64` matrix.
//!
//! This is deliberately minimal: the characterization pipeline works with
//! matrices of a few dozen rows (kernels) by a few dozen columns
//! (characteristics), so clarity and determinism beat raw speed.

use crate::StatsError;

/// Dense row-major matrix of `f64` values.
///
/// Rows are observations (e.g. kernels), columns are variables
/// (e.g. characteristics).
///
/// # Example
///
/// ```
/// use gwc_stats::Matrix;
///
/// # fn main() -> Result<(), gwc_stats::StatsError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.col_mean(1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows` × `cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for zero rows and
    /// [`StatsError::ShapeMismatch`] if row lengths differ.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, StatsError> {
        let first = rows.first().ok_or(StatsError::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(StatsError::ShapeMismatch {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, StatsError> {
        if data.len() != rows * cols {
            return Err(StatsError::ShapeMismatch {
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Mean of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds or the matrix has zero rows.
    pub fn col_mean(&self, c: usize) -> f64 {
        assert!(self.rows > 0, "mean of empty column");
        self.col(c).iter().sum::<f64>() / self.rows as f64
    }

    /// Population standard deviation of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds or the matrix has zero rows.
    pub fn col_std(&self, c: usize) -> f64 {
        let mean = self.col_mean(c);
        let var = self
            .col(c)
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.rows as f64;
        var.sqrt()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != other.rows {
            return Err(StatsError::ShapeMismatch {
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// Keeps only the listed columns, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, keep.len());
        for r in 0..self.rows {
            for (j, &c) in keep.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Keeps only the listed rows, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(keep.len(), self.cols);
        for (i, &r) in keep.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Sample covariance matrix of the columns (divides by `n - 1`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] when there are fewer than two rows.
    pub fn covariance(&self) -> Result<Matrix, StatsError> {
        if self.rows < 2 {
            return Err(StatsError::Empty);
        }
        let means: Vec<f64> = (0..self.cols).map(|c| self.col_mean(c)).collect();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += (self.get(r, i) - means[i]) * (self.get(r, j) - means[j]);
                }
                let v = s / (self.rows - 1) as f64;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        Ok(cov)
    }

    /// Validates that every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] locating the first bad entry.
    pub fn check_finite(&self) -> Result<(), StatsError> {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if !self.get(r, c).is_finite() {
                    return Err(StatsError::NonFinite { row: r, col: c });
                }
            }
        }
        Ok(())
    }
}

/// Incremental row-major matrix assembly: rows stream in chunk by chunk
/// (e.g. one cached block per workload) and land directly in the final
/// flat buffer, so peak memory is one matrix — not a `Vec<Vec<f64>>`
/// staging copy plus the matrix, as [`Matrix::from_rows`] needs.
///
/// # Example
///
/// ```
/// use gwc_stats::MatrixBuilder;
///
/// # fn main() -> Result<(), gwc_stats::StatsError> {
/// let mut b = MatrixBuilder::new(2);
/// b.push_row(&[1.0, 2.0])?;
/// b.push_row(&[3.0, 4.0])?;
/// let m = b.finish()?;
/// assert_eq!(m.shape(), (2, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MatrixBuilder {
    cols: usize,
    data: Vec<f64>,
}

impl MatrixBuilder {
    /// An empty builder for matrices of `cols` columns.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            data: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ShapeMismatch`] if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), StatsError> {
        if row.len() != self.cols {
            return Err(StatsError::ShapeMismatch {
                expected: self.cols,
                found: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Finalizes into a [`Matrix`] without copying the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] when no rows were appended.
    pub fn finish(self) -> Result<Matrix, StatsError> {
        let rows = self.rows();
        if rows == 0 {
            return Err(StatsError::Empty);
        }
        Matrix::from_vec(rows, self.cols, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            StatsError::ShapeMismatch {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), StatsError::Empty);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn col_stats() {
        let m = sample();
        assert_eq!(m.col_mean(0), 2.5);
        assert!((m.col_std(0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn select_cols_and_rows() {
        let m = sample();
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        let r = m.select_rows(&[1]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn covariance_of_perfectly_correlated_cols() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = m.covariance().unwrap();
        // var(x) = 1, cov(x, 2x) = 2, var(2x) = 4.
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_needs_two_rows() {
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert_eq!(m.covariance().unwrap_err(), StatsError::Empty);
    }

    #[test]
    fn check_finite_detects_nan() {
        let mut m = sample();
        m.set(1, 2, f64::NAN);
        assert_eq!(
            m.check_finite().unwrap_err(),
            StatsError::NonFinite { row: 1, col: 2 }
        );
    }

    #[test]
    fn builder_matches_from_rows() {
        let rows = [vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let mut b = MatrixBuilder::new(3);
        for r in &rows {
            b.push_row(r).unwrap();
        }
        assert_eq!(b.rows(), 2);
        assert_eq!(b.finish().unwrap(), Matrix::from_rows(&rows).unwrap());
    }

    #[test]
    fn builder_rejects_ragged_and_empty() {
        let mut b = MatrixBuilder::new(2);
        assert!(b.push_row(&[1.0]).is_err());
        assert_eq!(
            MatrixBuilder::new(2).finish().unwrap_err(),
            StatsError::Empty
        );
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = sample();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], m.row(0));
    }
}
