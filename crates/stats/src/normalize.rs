//! Column normalization used before PCA/clustering.
//!
//! The characterization methodology normalizes every characteristic to
//! zero mean and unit variance so dimensions with large magnitudes
//! (e.g. instruction counts) do not dominate dimensions in `[0, 1]`
//! (e.g. activity factors).

use crate::Matrix;

/// Per-column mean/std recorded by [`zscore`], so new observations can be
/// projected into the same normalized space.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column population standard deviations (zeros are kept as-is; the
    /// corresponding normalized column is all-zero).
    pub std: Vec<f64>,
}

impl ColumnStats {
    /// Applies the recorded transform to one observation vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the number of recorded columns.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.mean.len(), "column count mismatch");
        row.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (&m, &s))| if s > 0.0 { (v - m) / s } else { 0.0 })
            .collect()
    }
}

/// Z-score (standard-score) normalization of every column.
///
/// Columns with zero variance become all-zero rather than NaN, which keeps
/// degenerate characteristics harmless for downstream PCA.
pub fn zscore(m: &Matrix) -> (Matrix, ColumnStats) {
    let mean: Vec<f64> = (0..m.cols()).map(|c| m.col_mean(c)).collect();
    let std: Vec<f64> = (0..m.cols()).map(|c| m.col_std(c)).collect();
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let v = if std[c] > 0.0 {
                (m.get(r, c) - mean[c]) / std[c]
            } else {
                0.0
            };
            out.set(r, c, v);
        }
    }
    (out, ColumnStats { mean, std })
}

/// Min-max normalization of every column into `[0, 1]`.
///
/// Constant columns become all-zero.
pub fn minmax(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for c in 0..m.cols() {
        let col = m.col(c);
        let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        for r in 0..m.rows() {
            let v = if span > 0.0 {
                (m.get(r, c) - lo) / span
            } else {
                0.0
            };
            out.set(r, c, v);
        }
    }
    out
}

/// Indices of columns whose population standard deviation exceeds `eps`.
///
/// Used to drop characteristics that are constant across the whole study
/// (they carry no diversity information and only add noise to PCA).
pub fn varying_columns(m: &Matrix, eps: f64) -> Vec<usize> {
    (0..m.cols()).filter(|&c| m.col_std(c) > eps).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0, 5.0],
            vec![2.0, 20.0, 5.0],
            vec![3.0, 30.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn zscore_centers_and_scales() {
        let (z, stats) = zscore(&sample());
        for c in 0..2 {
            assert!(z.col_mean(c).abs() < 1e-12);
            assert!((z.col_std(c) - 1.0).abs() < 1e-12);
        }
        assert_eq!(stats.mean[0], 2.0);
    }

    #[test]
    fn zscore_zero_variance_column_is_zeroed() {
        let (z, _) = zscore(&sample());
        assert_eq!(z.col(2), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn apply_matches_fit() {
        let m = sample();
        let (z, stats) = zscore(&m);
        let projected = stats.apply(m.row(1));
        for (c, &p) in projected.iter().enumerate().take(3) {
            assert!((p - z.get(1, c)).abs() < 1e-12);
        }
    }

    #[test]
    fn minmax_bounds() {
        let mm = minmax(&sample());
        assert_eq!(mm.get(0, 0), 0.0);
        assert_eq!(mm.get(2, 0), 1.0);
        assert_eq!(mm.get(1, 1), 0.5);
        // Constant column maps to zero.
        assert_eq!(mm.col(2), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn varying_columns_drops_constant() {
        assert_eq!(varying_columns(&sample(), 1e-9), vec![0, 1]);
    }
}
