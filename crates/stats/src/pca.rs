//! Principal component analysis.
//!
//! PCA is computed from the sample covariance matrix with a cyclic Jacobi
//! eigendecomposition — exact (to convergence tolerance), dependency-free
//! and deterministic, which matters for reproducible study artifacts.

use crate::{Matrix, StatsError};

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Result of a symmetric eigendecomposition: `a = v * diag(values) * v^T`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, in the same order as `values`.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`StatsError::ShapeMismatch`] if `a` is not square.
/// * [`StatsError::NoConvergence`] if the off-diagonal mass does not vanish
///   within the sweep budget (does not happen for well-formed covariance
///   matrices of the sizes used here).
pub fn eigen_symmetric(a: &Matrix) -> Result<Eigen, StatsError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(StatsError::ShapeMismatch {
            expected: n,
            found: a.cols(),
        });
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-12 {
            return Ok(sorted_eigen(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate rotation into eigenvector matrix.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(StatsError::NoConvergence)
}

fn sorted_eigen(m: Matrix, v: Matrix) -> Eigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        // Fix the sign so the largest-magnitude entry is positive; this
        // makes eigenvectors (and therefore PC scatter plots) deterministic.
        let col: Vec<f64> = (0..n).map(|r| v.get(r, old_col)).collect();
        let max = col
            .iter()
            .cloned()
            .max_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite"))
            .unwrap_or(1.0);
        let sign = if max < 0.0 { -1.0 } else { 1.0 };
        for (r, &v) in col.iter().enumerate() {
            vectors.set(r, new_col, sign * v);
        }
    }
    Eigen { values, vectors }
}

/// A fitted principal component analysis.
///
/// # Example
///
/// ```
/// use gwc_stats::{Matrix, pca::Pca};
///
/// # fn main() -> Result<(), gwc_stats::StatsError> {
/// let data = Matrix::from_rows(&[
///     vec![2.5, 2.4],
///     vec![0.5, 0.7],
///     vec![2.2, 2.9],
///     vec![1.9, 2.2],
///     vec![3.1, 3.0],
/// ])?;
/// let pca = Pca::fit(&data)?;
/// let scores = pca.transform(&data, 2)?;
/// assert_eq!(scores.shape(), (5, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    eigen: Eigen,
    total_variance: f64,
}

impl Pca {
    /// Fits PCA to the rows of `data` (observations × variables).
    ///
    /// # Errors
    ///
    /// * [`StatsError::Empty`] with fewer than two rows.
    /// * [`StatsError::NonFinite`] if `data` contains NaN/inf.
    /// * [`StatsError::NoConvergence`] from the eigensolver.
    pub fn fit(data: &Matrix) -> Result<Self, StatsError> {
        data.check_finite()?;
        let cov = data.covariance()?;
        let eigen = eigen_symmetric(&cov)?;
        let total_variance: f64 = eigen.values.iter().map(|v| v.max(0.0)).sum();
        let mean = (0..data.cols()).map(|c| data.col_mean(c)).collect();
        Ok(Self {
            mean,
            eigen,
            total_variance,
        })
    }

    /// Number of input variables.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Eigenvalues (variance along each PC), descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigen.values
    }

    /// Loading of variable `var` on principal component `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` or `var` is out of range.
    pub fn loading(&self, var: usize, pc: usize) -> f64 {
        self.eigen.vectors.get(var, pc)
    }

    /// Fraction of total variance explained by the first `k` components.
    pub fn variance_explained(&self, k: usize) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        let kept: f64 = self.eigen.values.iter().take(k).map(|v| v.max(0.0)).sum();
        kept / self.total_variance
    }

    /// Smallest number of components whose cumulative variance reaches
    /// `fraction` (clamped to at least 1 component).
    pub fn components_for(&self, fraction: f64) -> usize {
        let n = self.eigen.values.len();
        for k in 1..=n {
            if self.variance_explained(k) >= fraction {
                return k;
            }
        }
        n.max(1)
    }

    /// Projects observations onto the first `k` principal components.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ShapeMismatch`] if `data` has a different
    /// variable count than the fit, or `k` exceeds the dimensionality.
    pub fn transform(&self, data: &Matrix, k: usize) -> Result<Matrix, StatsError> {
        if data.cols() != self.dims() {
            return Err(StatsError::ShapeMismatch {
                expected: self.dims(),
                found: data.cols(),
            });
        }
        if k > self.dims() {
            return Err(StatsError::ShapeMismatch {
                expected: self.dims(),
                found: k,
            });
        }
        let mut out = Matrix::zeros(data.rows(), k);
        for r in 0..data.rows() {
            for pc in 0..k {
                let mut s = 0.0;
                for c in 0..data.cols() {
                    s += (data.get(r, c) - self.mean[c]) * self.eigen.vectors.get(c, pc);
                }
                out.set(r, pc, s);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let e = eigen_symmetric(&m).unwrap();
        assert_close(e.values[0], 3.0);
        assert_close(e.values[1], 1.0);
    }

    #[test]
    fn eigen_of_known_symmetric() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = eigen_symmetric(&m).unwrap();
        assert_close(e.values[0], 3.0);
        assert_close(e.values[1], 1.0);
        // Eigenvector for 3 is (1,1)/sqrt(2).
        let inv_sqrt2 = 1.0 / 2.0_f64.sqrt();
        assert_close(e.vectors.get(0, 0).abs(), inv_sqrt2);
        assert_close(e.vectors.get(1, 0).abs(), inv_sqrt2);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let e = eigen_symmetric(&m).unwrap();
        // v * diag(values) * v^T == m
        let mut diag = Matrix::zeros(3, 3);
        for i in 0..3 {
            diag.set(i, i, e.values[i]);
        }
        let rec = e
            .vectors
            .matmul(&diag)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(rec.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn eigen_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(eigen_symmetric(&m).is_err());
    }

    #[test]
    fn pca_collapses_redundant_dimension() {
        let data = Matrix::from_rows(&[
            vec![1.0, 2.0, -0.3],
            vec![2.0, 4.0, 0.7],
            vec![3.0, 6.0, -0.1],
            vec![4.0, 8.0, 0.4],
        ])
        .unwrap();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.variance_explained(2) > 0.999);
        assert_eq!(pca.components_for(0.999), 2);
    }

    #[test]
    fn transform_preserves_pairwise_distances_full_rank() {
        // An orthogonal change of basis preserves Euclidean distances.
        let data = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 2.0, 0.0],
            vec![-1.0, 0.5, 1.0],
        ])
        .unwrap();
        let pca = Pca::fit(&data).unwrap();
        let t = pca.transform(&data, 3).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let d0: f64 = (0..3)
                    .map(|c| (data.get(a, c) - data.get(b, c)).powi(2))
                    .sum();
                let d1: f64 = (0..3).map(|c| (t.get(a, c) - t.get(b, c)).powi(2)).sum();
                assert_close(d0, d1);
            }
        }
    }

    #[test]
    fn transform_rejects_bad_shapes() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.0]]).unwrap();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.transform(&Matrix::zeros(2, 3), 2).is_err());
        assert!(pca.transform(&data, 3).is_err());
    }

    #[test]
    fn fit_rejects_nan() {
        let mut data = Matrix::zeros(3, 2);
        data.set(0, 0, f64::NAN);
        assert!(matches!(
            Pca::fit(&data),
            Err(StatsError::NonFinite { row: 0, col: 0 })
        ));
    }

    #[test]
    fn variance_explained_is_monotone() {
        let data = Matrix::from_rows(&[
            vec![1.0, 5.0, 2.0, 0.0],
            vec![2.0, 3.0, 1.0, 1.0],
            vec![0.5, 4.0, 7.0, 2.0],
            vec![3.0, 1.0, 2.0, 5.0],
            vec![2.5, 2.0, 3.0, 4.0],
        ])
        .unwrap();
        let pca = Pca::fit(&data).unwrap();
        let mut prev = 0.0;
        for k in 1..=4 {
            let v = pca.variance_explained(k);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        assert_close(pca.variance_explained(4), 1.0);
    }
}
