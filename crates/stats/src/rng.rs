/// A tiny deterministic PRNG (SplitMix64) used internally for k-means++
/// seeding so the crate stays dependency-free and bit-reproducible.
///
/// Not exposed publicly; callers control determinism through explicit seeds.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub(crate) fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = SplitMix64::new(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
