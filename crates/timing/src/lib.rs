//! An analytical GPU performance model for design-space evaluation.
//!
//! The characterization pipeline is microarchitecture *independent*; this
//! crate is where microarchitecture comes back in. Following the
//! MWP/CWP-style analytical models of the paper's era, a kernel's runtime
//! on a [`GpuConfig`] is estimated from its measured
//! [`gwc_characterize::RawCounts`] and reuse-distance CDF as the maximum
//! of three pressure terms — issue throughput, DRAM bandwidth, and
//! exposed memory latency — plus shared-memory serialization:
//!
//! * the *cache hit rate* on a config with `c` lines is read off the
//!   kernel's reuse-distance CDF (a fully associative LRU cache of `c`
//!   lines hits exactly the accesses with stack distance `< c`), so the
//!   same profile prices every cache size in the sweep;
//! * *coalescing* enters through the measured transactions-per-access
//!   ratio; *divergence* through warp-level instruction counts, which
//!   already pay for serialized branch paths.
//!
//! Absolute cycle counts are not the point (the paper's were not either);
//! what the design-space experiments need is that different workloads
//! respond differently — and plausibly — to parameter changes.

pub mod model;
pub mod sweep;

pub use model::{estimate_cycles, CycleBreakdown, GpuConfig};
pub use sweep::{speedups, DesignPoint, SweepResult};
