//! The per-kernel analytical cycle model.

use gwc_characterize::KernelProfile;

/// Bytes per global memory transaction (matches the characterization
/// segment size).
const SEGMENT_BYTES: f64 = 128.0;

/// A GPU design point.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Resident warps per SM (occupancy / latency-hiding capacity).
    pub warps_per_sm: u32,
    /// Warp instructions issued per cycle per SM.
    pub issue_per_cycle: f64,
    /// SFU thread-operations retired per cycle per SM.
    pub sfu_throughput: f64,
    /// DRAM latency in cycles.
    pub mem_latency: f64,
    /// Chip-wide DRAM bandwidth in bytes per cycle.
    pub mem_bandwidth: f64,
    /// Per-SM cache capacity in 128-byte lines (0 = no cache).
    pub cache_lines: u64,
}

impl GpuConfig {
    /// A GT200-class baseline (30 SMs, no data cache), the kind of device
    /// the paper characterized.
    pub fn baseline() -> Self {
        Self {
            name: "baseline-gt200".into(),
            sm_count: 30,
            warps_per_sm: 32,
            issue_per_cycle: 1.0,
            sfu_throughput: 8.0,
            mem_latency: 400.0,
            mem_bandwidth: 64.0,
            cache_lines: 0,
        }
    }

    /// A Fermi-class point: fewer, wider SMs plus an L1 cache.
    pub fn fermi_like() -> Self {
        Self {
            name: "fermi-like".into(),
            sm_count: 16,
            warps_per_sm: 48,
            issue_per_cycle: 2.0,
            sfu_throughput: 4.0,
            mem_latency: 450.0,
            mem_bandwidth: 96.0,
            cache_lines: 384, // 48 KiB of 128B lines
        }
    }
}

/// The three pressure terms plus overheads, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Issue-throughput-bound cycles (includes SFU pressure).
    pub compute: f64,
    /// DRAM-bandwidth-bound cycles.
    pub bandwidth: f64,
    /// Exposed-latency cycles after multithreading hides what it can.
    pub latency: f64,
    /// Shared-memory serialization cycles.
    pub shared: f64,
    /// Final estimate: `max(compute, bandwidth, latency) + shared`.
    pub total: f64,
}

/// Estimates the cache hit rate of a `lines`-line LRU cache from the
/// kernel's measured reuse-distance CDF (piecewise on the recorded
/// thresholds 16 / 256 / 4096 lines).
pub fn hit_rate(profile: &KernelProfile, lines: u64) -> f64 {
    if lines == 0 {
        return 0.0;
    }
    let reuse_frac = 1.0 - profile.get("loc_cold_frac");
    let cdf = if lines >= 4096 {
        profile.get("loc_reuse_le4096")
    } else if lines >= 256 {
        profile.get("loc_reuse_le256")
    } else if lines >= 16 {
        profile.get("loc_reuse_le16")
    } else {
        0.0
    };
    (reuse_frac * cdf).clamp(0.0, 1.0)
}

/// Estimates execution cycles of a profiled kernel on `config`.
///
/// See the [crate docs](crate) for the model; deterministic and purely a
/// function of the profile's raw counters plus the config.
pub fn estimate_cycles(profile: &KernelProfile, config: &GpuConfig) -> CycleBreakdown {
    let raw = profile.raw();
    let sms = config.sm_count as f64;

    // --- compute pressure ----------------------------------------------------
    let issue = raw.warp_instrs as f64 / (config.issue_per_cycle * sms);
    let sfu = raw.sfu_thread_instrs as f64 / (config.sfu_throughput * sms);
    let compute = issue.max(sfu);

    // --- DRAM traffic after the cache ----------------------------------------
    let hr = hit_rate(profile, config.cache_lines);
    let dram_transactions = raw.global_transactions as f64 * (1.0 - hr);
    let bandwidth = dram_transactions * SEGMENT_BYTES / config.mem_bandwidth;

    // --- exposed latency -------------------------------------------------------
    // Each memory access stalls a warp for mem_latency cycles; with W
    // resident warps per SM the machine overlaps up to W stalls.
    let total_warps = (raw.total_threads as f64 / 32.0).max(1.0);
    let resident = (config.warps_per_sm as f64).min(total_warps / sms).max(1.0);
    let accesses_per_sm = raw.global_accesses as f64 * (1.0 - hr) / sms;
    let latency = accesses_per_sm * config.mem_latency / resident;

    // --- shared-memory serialization -------------------------------------------
    let shared = raw.shared_serialized as f64 / (config.issue_per_cycle * sms);

    let total = compute.max(bandwidth).max(latency) + shared;
    CycleBreakdown {
        compute,
        bandwidth,
        latency,
        shared,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_characterize::{schema, KernelProfile, RawCounts};
    use gwc_simt::trace::LaunchStats;

    fn profile_with(raw: RawCounts, edits: &[(&str, f64)]) -> KernelProfile {
        let mut values = vec![0.0; schema::len()];
        for (name, v) in edits {
            values[schema::index_of(name)] = *v;
        }
        KernelProfile::new("test", values, raw, LaunchStats::default())
    }

    fn compute_bound_raw() -> RawCounts {
        RawCounts {
            warp_instrs: 1_000_000,
            thread_instrs: 32_000_000,
            global_accesses: 100,
            global_transactions: 100,
            total_threads: 100_000,
            ..RawCounts::default()
        }
    }

    fn memory_bound_raw() -> RawCounts {
        RawCounts {
            warp_instrs: 10_000,
            thread_instrs: 320_000,
            global_accesses: 100_000,
            global_transactions: 3_200_000,
            total_threads: 100_000,
            ..RawCounts::default()
        }
    }

    #[test]
    fn compute_bound_kernel_scales_with_sms() {
        let p = profile_with(compute_bound_raw(), &[]);
        let base = estimate_cycles(&p, &GpuConfig::baseline());
        let mut doubled = GpuConfig::baseline();
        doubled.sm_count *= 2;
        let fast = estimate_cycles(&p, &doubled);
        assert!(base.total / fast.total > 1.8, "{base:?} vs {fast:?}");
    }

    #[test]
    fn memory_bound_kernel_scales_with_bandwidth() {
        let p = profile_with(memory_bound_raw(), &[]);
        let base = estimate_cycles(&p, &GpuConfig::baseline());
        assert!(base.bandwidth > base.compute, "bandwidth dominates");
        let mut wide = GpuConfig::baseline();
        wide.mem_bandwidth *= 2.0;
        let fast = estimate_cycles(&p, &wide);
        assert!(base.total / fast.total > 1.5);
        // SM count barely matters for this kernel.
        let mut more_sms = GpuConfig::baseline();
        more_sms.sm_count *= 2;
        let same = estimate_cycles(&p, &more_sms);
        assert!(base.total / same.total < 1.3);
    }

    #[test]
    fn cache_helps_only_reusing_kernels() {
        let reuser = profile_with(
            memory_bound_raw(),
            &[
                ("loc_cold_frac", 0.1),
                ("loc_reuse_le16", 0.8),
                ("loc_reuse_le256", 0.9),
                ("loc_reuse_le4096", 1.0),
            ],
        );
        let streamer = profile_with(memory_bound_raw(), &[("loc_cold_frac", 1.0)]);
        let cached = GpuConfig::fermi_like();
        let uncached = GpuConfig {
            cache_lines: 0,
            ..GpuConfig::fermi_like()
        };
        let gain_reuser =
            estimate_cycles(&reuser, &uncached).total / estimate_cycles(&reuser, &cached).total;
        let gain_streamer =
            estimate_cycles(&streamer, &uncached).total / estimate_cycles(&streamer, &cached).total;
        assert!(gain_reuser > 1.5, "reuser gains from cache: {gain_reuser}");
        assert!(
            (gain_streamer - 1.0).abs() < 0.05,
            "streamer does not: {gain_streamer}"
        );
    }

    #[test]
    fn hit_rate_thresholds() {
        let p = profile_with(
            RawCounts::default(),
            &[
                ("loc_cold_frac", 0.0),
                ("loc_reuse_le16", 0.3),
                ("loc_reuse_le256", 0.6),
                ("loc_reuse_le4096", 0.9),
            ],
        );
        assert_eq!(hit_rate(&p, 0), 0.0);
        assert_eq!(hit_rate(&p, 8), 0.0);
        assert!((hit_rate(&p, 64) - 0.3).abs() < 1e-12);
        assert!((hit_rate(&p, 1024) - 0.6).abs() < 1e-12);
        assert!((hit_rate(&p, 1 << 20) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn shared_serialization_adds_cycles() {
        let mut raw = compute_bound_raw();
        raw.shared_accesses = 100_000;
        raw.shared_serialized = 3_200_000; // 32-way conflicts
        let p = profile_with(raw, &[]);
        let with_conflicts = estimate_cycles(&p, &GpuConfig::baseline());
        let p2 = profile_with(compute_bound_raw(), &[]);
        let without = estimate_cycles(&p2, &GpuConfig::baseline());
        assert!(with_conflicts.total > without.total);
    }

    #[test]
    fn breakdown_total_is_max_plus_shared() {
        let p = profile_with(memory_bound_raw(), &[]);
        let b = estimate_cycles(&p, &GpuConfig::baseline());
        let expect = b.compute.max(b.bandwidth).max(b.latency) + b.shared;
        assert_eq!(b.total, expect);
    }
}
