//! Design-space sweeps over a set of profiled kernels.

use gwc_characterize::KernelProfile;

use crate::model::{estimate_cycles, GpuConfig};

/// One evaluated design point: per-kernel speedups over the baseline.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: GpuConfig,
    /// Speedup of each kernel relative to the baseline config, in the
    /// order the profiles were given.
    pub speedups: Vec<f64>,
}

impl DesignPoint {
    /// Arithmetic-mean speedup across all kernels.
    pub fn mean_speedup(&self) -> f64 {
        if self.speedups.is_empty() {
            return 0.0;
        }
        self.speedups.iter().sum::<f64>() / self.speedups.len() as f64
    }

    /// Mean speedup over a subset of kernel indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset_mean(&self, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        subset.iter().map(|&i| self.speedups[i]).sum::<f64>() / subset.len() as f64
    }
}

/// A full sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Baseline configuration.
    pub baseline: GpuConfig,
    /// Evaluated points (excluding the baseline itself).
    pub points: Vec<DesignPoint>,
}

/// Computes per-kernel speedups of every `config` relative to `baseline`.
pub fn speedups(
    profiles: &[KernelProfile],
    baseline: &GpuConfig,
    configs: &[GpuConfig],
) -> SweepResult {
    let base_cycles: Vec<f64> = profiles
        .iter()
        .map(|p| estimate_cycles(p, baseline).total.max(1e-9))
        .collect();
    let points = configs
        .iter()
        .map(|cfg| {
            let speedups = profiles
                .iter()
                .zip(&base_cycles)
                .map(|(p, &b)| b / estimate_cycles(p, cfg).total.max(1e-9))
                .collect();
            DesignPoint {
                config: cfg.clone(),
                speedups,
            }
        })
        .collect();
    SweepResult {
        baseline: baseline.clone(),
        points,
    }
}

/// The default design space used by the evaluation-metrics experiment:
/// scaling SM count, bandwidth, latency, cache and occupancy around the
/// baseline.
pub fn default_design_space() -> Vec<GpuConfig> {
    let b = GpuConfig::baseline();
    let mut space = Vec::new();
    type Tweak = Box<dyn Fn(&mut GpuConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        ("2x-sms", Box::new(|c: &mut GpuConfig| c.sm_count *= 2)),
        ("half-sms", Box::new(|c: &mut GpuConfig| c.sm_count /= 2)),
        (
            "2x-bandwidth",
            Box::new(|c: &mut GpuConfig| c.mem_bandwidth *= 2.0),
        ),
        (
            "half-latency",
            Box::new(|c: &mut GpuConfig| c.mem_latency /= 2.0),
        ),
        (
            "add-16kb-cache",
            Box::new(|c: &mut GpuConfig| c.cache_lines = 128),
        ),
        (
            "add-64kb-cache",
            Box::new(|c: &mut GpuConfig| c.cache_lines = 512),
        ),
        (
            "2x-occupancy",
            Box::new(|c: &mut GpuConfig| c.warps_per_sm *= 2),
        ),
        (
            "dual-issue",
            Box::new(|c: &mut GpuConfig| c.issue_per_cycle = 2.0),
        ),
    ];
    for (name, apply) in variants {
        let mut cfg = b.clone();
        cfg.name = name.into();
        apply(&mut cfg);
        space.push(cfg);
    }
    space.push(GpuConfig::fermi_like());
    space
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_characterize::{schema, RawCounts};
    use gwc_simt::trace::LaunchStats;

    fn profile(warp_instrs: u64, transactions: u64) -> KernelProfile {
        KernelProfile::new(
            "p",
            vec![0.0; schema::len()],
            RawCounts {
                warp_instrs,
                thread_instrs: warp_instrs * 32,
                global_accesses: transactions / 4,
                global_transactions: transactions,
                total_threads: 10_000,
                ..RawCounts::default()
            },
            LaunchStats::default(),
        )
    }

    #[test]
    fn baseline_speedup_is_one() {
        let profiles = vec![profile(1_000_000, 1000)];
        let b = GpuConfig::baseline();
        let sweep = speedups(&profiles, &b, std::slice::from_ref(&b));
        assert!((sweep.points[0].speedups[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn workloads_respond_differently() {
        let compute = profile(10_000_000, 100);
        let memory = profile(10_000, 10_000_000);
        let b = GpuConfig::baseline();
        let mut bw = b.clone();
        bw.name = "2x-bw".into();
        bw.mem_bandwidth *= 2.0;
        let sweep = speedups(&[compute, memory], &b, &[bw]);
        let s = &sweep.points[0].speedups;
        assert!(s[1] > 1.5, "memory-bound gains: {s:?}");
        assert!((s[0] - 1.0).abs() < 0.1, "compute-bound does not: {s:?}");
    }

    #[test]
    fn subset_mean_matches_manual() {
        let p = DesignPoint {
            config: GpuConfig::baseline(),
            speedups: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(p.mean_speedup(), 2.5);
        assert_eq!(p.subset_mean(&[1, 3]), 3.0);
        assert_eq!(p.subset_mean(&[]), 0.0);
    }

    #[test]
    fn default_space_is_distinct_and_named() {
        let space = default_design_space();
        assert!(space.len() >= 8);
        let mut names: Vec<&str> = space.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), space.len());
    }
}
