//! Workload-instance fingerprints for the persistent profile cache.
//!
//! A kernel profile is a pure function of (kernel IR, launch geometry,
//! arguments, input seed, scale) — nothing else. The fingerprint
//! collapses all of that into one stable 64-bit value: the per-kernel
//! content hashes ([`gwc_simt::kernel::Kernel::content_hash`]) cover the
//! IR, and the launch specs cover geometry and arguments (buffer handles
//! are allocation-ordered and therefore deterministic). The generator
//! version is baked in so a change to any input generator re-keys every
//! entry without anyone having to remember to clear caches.

use gwc_simt::hash::Fnv1a;

use crate::workload::{LaunchSpec, Scale};

/// Version of the workload input generators. Bump whenever any
/// workload's setup changes in a way its launch specs do not capture —
/// e.g. a change to CPU-side reference data that feeds verification but
/// not the kernels. Bumping invalidates every cached profile.
pub const GENERATOR_VERSION: u32 = 1;

fn scale_tag(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

/// The fingerprint of one workload instance: the master study seed, the
/// scale, the generator version, and — per launch, in order — the label,
/// kernel content hash, launch geometry and argument values.
///
/// Two study runs with equal fingerprints produce bit-identical
/// profiles, so the fingerprint is a sound cache key for the workload's
/// full set of kernel profiles.
pub fn workload_fingerprint(name: &str, seed: u64, scale: Scale, launches: &[LaunchSpec]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u32(GENERATOR_VERSION);
    h.write_str(name);
    h.write_u64(seed);
    h.write_u32(scale_tag(scale));
    h.write_u64(launches.len() as u64);
    for l in launches {
        h.write_str(&l.label);
        h.write_u64(l.kernel.content_hash());
        h.write_u32(l.config.grid_x);
        h.write_u32(l.config.grid_y);
        h.write_u32(l.config.block_x);
        h.write_u32(l.config.block_y);
        h.write_u64(l.args.len() as u64);
        for a in &l.args {
            h.write_u32(scale_tag_value(a));
            h.write_u32(a.to_bits());
        }
    }
    h.finish()
}

fn scale_tag_value(v: &gwc_simt::instr::Value) -> u32 {
    use gwc_simt::instr::Value;
    match v {
        Value::I32(_) => 0,
        Value::U32(_) => 1,
        Value::F32(_) => 2,
        Value::Pred(_) => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use gwc_simt::exec::Device;

    fn fingerprint_of(name: &str, seed: u64, scale: Scale) -> u64 {
        let mut workloads = registry::all_workloads(seed);
        let w = workloads
            .iter_mut()
            .find(|w| w.meta().name == name)
            .expect("in registry");
        let mut dev = Device::new();
        let launches = w.setup(&mut dev, scale).expect("setup succeeds");
        workload_fingerprint(name, seed, scale, &launches)
    }

    #[test]
    fn fingerprint_is_reproducible() {
        assert_eq!(
            fingerprint_of("parallel_reduction", 7, Scale::Tiny),
            fingerprint_of("parallel_reduction", 7, Scale::Tiny)
        );
    }

    #[test]
    fn fingerprint_keys_on_seed_and_scale() {
        let base = fingerprint_of("parallel_reduction", 7, Scale::Tiny);
        assert_ne!(base, fingerprint_of("parallel_reduction", 8, Scale::Tiny));
        assert_ne!(base, fingerprint_of("parallel_reduction", 7, Scale::Small));
    }

    #[test]
    fn fingerprints_differ_across_workloads() {
        let mut seen = std::collections::BTreeSet::new();
        for meta in registry::all_metas(7) {
            assert!(
                seen.insert(fingerprint_of(meta.name, 7, Scale::Tiny)),
                "fingerprint collision at {}",
                meta.name
            );
        }
    }
}
