//! GPGPU benchmark workloads reimplemented in the `gwc-simt` kernel IR.
//!
//! The suite mirrors the workload population of the IISWC 2010 study:
//! kernels drawn from the **Nvidia CUDA SDK**, **Parboil** and **Rodinia**
//! benchmark suites, plus the stand-alone **MUMmerGPU** and **Similarity
//! Score** workloads the paper highlights. Each workload module provides:
//!
//! * synthetic input generators (seeded, reproducible),
//! * one or more kernels written with [`gwc_simt::builder::KernelBuilder`],
//!   faithful to the published algorithm structure of the original
//!   benchmark (same phases, same access patterns, same divergence
//!   structure),
//! * a CPU reference implementation used by [`Workload::verify`].
//!
//! # Example
//!
//! ```
//! use gwc_workloads::{registry, run_workload, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut workloads = registry::all_workloads(7);
//! let reduction = workloads
//!     .iter_mut()
//!     .find(|w| w.meta().name == "parallel_reduction")
//!     .expect("in registry");
//! // Runs every kernel launch and checks the GPU result against the CPU
//! // reference.
//! run_workload(reduction.as_mut(), Scale::Tiny)?;
//! # Ok(())
//! # }
//! ```

pub mod fingerprint;
pub mod pairs;
pub mod registry;
pub mod rng;
pub mod workload;

pub mod other;
pub mod parboil;
pub mod rodinia;
pub mod sdk;

pub use workload::{
    run_workload, LaunchSpec, Scale, StudyScale, Suite, VerifyError, Workload, WorkloadError,
    WorkloadMeta,
};
