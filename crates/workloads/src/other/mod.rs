//! Stand-alone workloads highlighted by the paper outside the three main
//! suites.

pub mod mummer_gpu;
pub mod similarity_score;

pub use mummer_gpu::MummerGpu;
pub use similarity_score::SimilarityScore;
