//! `MUMmerGPU` — DNA sequence matching against a suffix trie.
//!
//! The reference genome's suffix trie is built on the host (as MUMmerGPU
//! builds its suffix tree) and uploaded as a node table; each GPU thread
//! then walks the trie for one query, chasing child pointers until a
//! mismatch. Data-dependent walk depths and pointer-chasing gathers make
//! this the divergence/irregularity extreme of the workload population —
//! the paper singles it out for branch-divergence variation.
//!
//! *Substitution note:* real genome inputs are replaced by seeded random
//! DNA strings; the trie structure, walk loop and access patterns are the
//! ones that matter for characterization.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// Maximum trie depth (longest match we report).
const MAX_DEPTH: usize = 12;

/// See the [module docs](self).
///
/// Two query batches run as separate kernel instances — a reference-rich
/// batch (deep trie walks) and a random batch (shallow walks) — because
/// MUMmerGPU's divergence profile swings with query composition; this is
/// the intra-workload variation the paper reports.
#[derive(Debug)]
pub struct MummerGpu {
    seed: u64,
    match_len: Vec<BufferHandle>,
    expected: Vec<Vec<u32>>,
}

impl MummerGpu {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            match_len: Vec::new(),
            expected: Vec::new(),
        }
    }
}

/// A suffix trie over the 4-letter DNA alphabet, stored as a flat node
/// table (`children[node * 4 + base]`, 0 = absent).
#[derive(Debug)]
struct SuffixTrie {
    children: Vec<u32>,
}

impl SuffixTrie {
    fn build(reference: &[u8], max_depth: usize) -> Self {
        let mut children = vec![0u32; 4];
        let mut node_count = 1u32;
        for start in 0..reference.len() {
            let mut node = 0u32;
            for &c in reference.iter().skip(start).take(max_depth) {
                let slot = (node * 4 + c as u32) as usize;
                if children[slot] == 0 {
                    children[slot] = node_count;
                    children.extend_from_slice(&[0, 0, 0, 0]);
                    node_count += 1;
                }
                node = children[slot];
            }
        }
        Self { children }
    }

    fn match_len(&self, query: &[u8]) -> u32 {
        let mut node = 0u32;
        let mut len = 0u32;
        for &c in query.iter().take(MAX_DEPTH) {
            let next = self.children[(node * 4 + c as u32) as usize];
            if next == 0 {
                break;
            }
            node = next;
            len += 1;
        }
        len
    }
}

impl Workload for MummerGpu {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "mummer_gpu",
            suite: Suite::Other,
            description: "suffix-trie DNA matching; pointer chasing with data-dependent depth",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let ref_len = scale.pick(256, 1024, 4096);
        let n_queries = scale.pick(256, 1024, 8192);
        let query_len = MAX_DEPTH;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let reference: Vec<u8> = (0..ref_len).map(|_| rng.gen_range(0..4u8)).collect();
        let trie = SuffixTrie::build(&reference, MAX_DEPTH);

        // Two query batches with opposite match profiles: one mostly
        // reference substrings (deep walks), one mostly random (shallow).
        let mut gen_batch = |substring_percent: u32| -> Vec<u8> {
            let mut queries = vec![0u8; n_queries * query_len];
            for q in 0..n_queries {
                if (q as u32 % 100) < substring_percent && ref_len > query_len {
                    let start = rng.gen_range(0..ref_len - query_len);
                    queries[q * query_len..(q + 1) * query_len]
                        .copy_from_slice(&reference[start..start + query_len]);
                } else {
                    for c in queries[q * query_len..(q + 1) * query_len].iter_mut() {
                        *c = rng.gen_range(0..4u8);
                    }
                }
            }
            queries
        };
        let batches = [gen_batch(90), gen_batch(10)];
        self.expected = batches
            .iter()
            .map(|queries| {
                (0..n_queries)
                    .map(|q| trie.match_len(&queries[q * query_len..(q + 1) * query_len]))
                    .collect()
            })
            .collect();

        let htrie = device.alloc_u32(&trie.children);
        let hqueries: Vec<_> = batches
            .iter()
            .map(|queries| {
                let as_u32: Vec<u32> = queries.iter().map(|&c| c as u32).collect();
                device.alloc_u32(&as_u32)
            })
            .collect();
        self.match_len = (0..batches.len())
            .map(|_| device.alloc_zeroed_u32(n_queries))
            .collect();

        let mut b = KernelBuilder::new("mummer_match");
        let ptrie = b.param_u32("trie");
        let pq = b.param_u32("queries");
        let pout = b.param_u32("out");
        let pn = b.param_u32("n");
        let plen = b.param_u32("qlen");
        let q = b.global_tid_x();
        let in_range = b.lt_u32(q, pn);
        b.if_(in_range, |b| {
            let base = b.mul_u32(q, plen);
            let node = b.var_u32(Value::U32(0));
            let len = b.var_u32(Value::U32(0));
            let pos = b.var_u32(Value::U32(0));
            let alive = b.var_u32(Value::U32(1));
            b.while_(
                |b| {
                    let more = b.lt_u32(pos, plen);
                    let live = b.eq_u32(alive, Value::U32(1));
                    b.and_pred(more, live)
                },
                |b| {
                    let qidx = b.add_u32(base, pos);
                    let qa = b.index(pq, qidx, 4);
                    let c = b.ld_global_u32(qa);
                    let slot = b.mad_u32(node, Value::U32(4), c);
                    let ta = b.index(ptrie, slot, 4);
                    let next = b.ld_global_u32(ta);
                    let dead = b.eq_u32(next, Value::U32(0));
                    b.if_else(
                        dead,
                        |b| {
                            b.assign(alive, Value::U32(0));
                        },
                        |b| {
                            b.assign(node, next);
                            let nl = b.add_u32(len, Value::U32(1));
                            b.assign(len, nl);
                        },
                    );
                    let np = b.add_u32(pos, Value::U32(1));
                    b.assign(pos, np);
                },
            );
            let oa = b.index(pout, q, 4);
            b.st_global_u32(oa, len);
        });
        let kernel = b.build()?;

        Ok(["mummer_match_deep", "mummer_match_shallow"]
            .iter()
            .enumerate()
            .map(|(i, label)| LaunchSpec {
                label: (*label).into(),
                kernel: kernel.clone(),
                config: LaunchConfig::linear(n_queries as u32, 128),
                args: vec![
                    htrie.arg(),
                    hqueries[i].arg(),
                    self.match_len[i].arg(),
                    Value::U32(n_queries as u32),
                    Value::U32(query_len as u32),
                ],
            })
            .collect())
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        for (i, (out, want)) in self.match_len.iter().zip(&self.expected).enumerate() {
            let got = device.read_u32(out);
            check_u32(&format!("mummer batch {i}"), &got, want)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut MummerGpu::new(28), Scale::Tiny).unwrap();
    }

    #[test]
    fn trie_matches_substrings_fully() {
        let reference = vec![0u8, 1, 2, 3, 0, 1];
        let trie = SuffixTrie::build(&reference, 4);
        assert_eq!(trie.match_len(&[0, 1, 2, 3]), 4);
        assert_eq!(trie.match_len(&[1, 2, 3, 0]), 4);
        assert_eq!(trie.match_len(&[3, 3, 3, 3]), 1, "only '3' prefix exists");
    }
}
