//! `Similarity Score` — sparse document similarity.
//!
//! Each thread scores one document against a query document: a two-pointer
//! merge intersection over sorted sparse term vectors — every comparison
//! is a data-dependent branch, and document lengths follow a Zipf-like
//! distribution, so warps diverge wildly. The paper highlights Similarity
//! Score as diverse in *both* the divergence and coalescing subspaces.
//!
//! *Substitution note:* the original's document corpus is replaced by
//! seeded synthetic term vectors with Zipf-distributed lengths; the
//! merge-loop control structure and gather pattern are preserved.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// See the [module docs](self).
///
/// Two kernel instances score the corpus against two query documents — a
/// long, dense one and a short, sparse one — because the merge loop's
/// divergence profile swings with the query length; this input-driven
/// spread is the intra-workload variation the paper reports.
#[derive(Debug)]
pub struct SimilarityScore {
    seed: u64,
    scores: Vec<BufferHandle>,
    expected: Vec<Vec<f32>>,
}

impl SimilarityScore {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            scores: Vec::new(),
            expected: Vec::new(),
        }
    }
}

/// Generates a sorted sparse term vector with a Zipf-ish length.
fn gen_doc(rng: &mut SeededRng, vocab: u32, max_len: usize) -> (Vec<u32>, Vec<f32>) {
    // Zipf-like: length = max_len / rank, rank uniform in 1..=8.
    let rank = rng.gen_range(1usize..=8);
    gen_doc_len(rng, vocab, (max_len / rank).max(2))
}

/// Generates a sorted sparse term vector of (roughly) an exact length.
fn gen_doc_len(rng: &mut SeededRng, vocab: u32, len: usize) -> (Vec<u32>, Vec<f32>) {
    let len = len.max(2);
    let mut terms: Vec<u32> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();
    terms.sort_unstable();
    terms.dedup();
    let weights = terms.iter().map(|_| rng.gen_range(0.1..1.0)).collect();
    (terms, weights)
}

impl Workload for SimilarityScore {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "similarity_score",
            suite: Suite::Other,
            description: "sparse document similarity via two-pointer merge intersection",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n_docs = scale.pick(256, 1024, 4096);
        let vocab = scale.pick(512, 2048, 8192) as u32;
        let max_len = scale.pick(32, 64, 128);
        let mut rng = SeededRng::seed_from_u64(self.seed);

        // Dense and sparse query documents (lengths forced, not Zipf).
        let (q_long_terms, q_long_weights) = gen_doc_len(&mut rng, vocab, max_len * 4);
        let (q_short_terms, q_short_weights) = gen_doc_len(&mut rng, vocab, 3);
        let queries = [
            (q_long_terms, q_long_weights),
            (q_short_terms, q_short_weights),
        ];

        let mut doc_ptr = vec![0u32];
        let mut terms = Vec::new();
        let mut weights = Vec::new();
        let mut docs = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            let (t, w) = gen_doc(&mut rng, vocab, max_len);
            terms.extend_from_slice(&t);
            weights.extend_from_slice(&w);
            doc_ptr.push(terms.len() as u32);
            docs.push((t, w));
        }
        // CPU reference: merge intersection dot product per query,
        // mirroring the kernel's fused accumulate.
        self.expected = queries
            .iter()
            .map(|(q_terms, q_weights)| {
                docs.iter()
                    .map(|(t, w)| {
                        let (mut i, mut j, mut score) = (0usize, 0usize, 0.0f32);
                        while i < t.len() && j < q_terms.len() {
                            match t[i].cmp(&q_terms[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    score = w[i].mul_add(q_weights[j], score);
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                        score
                    })
                    .collect()
            })
            .collect();

        let hqueries: Vec<_> = queries
            .iter()
            .map(|(t, w)| (device.alloc_u32(t), device.alloc_f32(w), t.len() as u32))
            .collect();
        let hptr = device.alloc_u32(&doc_ptr);
        let hterms = device.alloc_u32(&terms);
        let hweights = device.alloc_f32(&weights);
        self.scores = (0..queries.len())
            .map(|_| device.alloc_zeroed_f32(n_docs))
            .collect();

        let mut b = KernelBuilder::new("similarity_score");
        let pqt = b.param_u32("q_terms");
        let pqw = b.param_u32("q_weights");
        let pqlen = b.param_u32("q_len");
        let pptr = b.param_u32("doc_ptr");
        let pterms = b.param_u32("terms");
        let pweights = b.param_u32("weights");
        let pscores = b.param_u32("scores");
        let pn = b.param_u32("n");
        let d = b.global_tid_x();
        let in_range = b.lt_u32(d, pn);
        b.if_(in_range, |b| {
            let sa = b.index(pptr, d, 4);
            let start = b.ld_global_u32(sa);
            let d1 = b.add_u32(d, Value::U32(1));
            let ea = b.index(pptr, d1, 4);
            let end = b.ld_global_u32(ea);
            let i = b.var_u32(start);
            let j = b.var_u32(Value::U32(0));
            let score = b.var_f32(Value::F32(0.0));
            b.while_(
                |b| {
                    let more_i = b.lt_u32(i, end);
                    let more_j = b.lt_u32(j, pqlen);
                    b.and_pred(more_i, more_j)
                },
                |b| {
                    let ta = b.index(pterms, i, 4);
                    let t = b.ld_global_u32(ta);
                    let qa = b.index(pqt, j, 4);
                    let q = b.ld_global_u32(qa);
                    let t_lt = b.lt_u32(t, q);
                    b.if_else(
                        t_lt,
                        |b| {
                            let ni = b.add_u32(i, Value::U32(1));
                            b.assign(i, ni);
                        },
                        |b| {
                            let q_lt = b.lt_u32(q, t);
                            b.if_else(
                                q_lt,
                                |b| {
                                    let nj = b.add_u32(j, Value::U32(1));
                                    b.assign(j, nj);
                                },
                                |b| {
                                    let wa = b.index(pweights, i, 4);
                                    let w = b.ld_global_f32(wa);
                                    let qwa = b.index(pqw, j, 4);
                                    let qw = b.ld_global_f32(qwa);
                                    let ns = b.mad_f32(w, qw, score);
                                    b.assign(score, ns);
                                    let ni = b.add_u32(i, Value::U32(1));
                                    b.assign(i, ni);
                                    let nj = b.add_u32(j, Value::U32(1));
                                    b.assign(j, nj);
                                },
                            );
                        },
                    );
                },
            );
            let oa = b.index(pscores, d, 4);
            b.st_global_f32(oa, score);
        });
        let kernel = b.build()?;

        Ok(["score_dense_query", "score_sparse_query"]
            .iter()
            .enumerate()
            .map(|(i, label)| LaunchSpec {
                label: (*label).into(),
                kernel: kernel.clone(),
                config: LaunchConfig::linear(n_docs as u32, 128),
                args: vec![
                    hqueries[i].0.arg(),
                    hqueries[i].1.arg(),
                    Value::U32(hqueries[i].2),
                    hptr.arg(),
                    hterms.arg(),
                    hweights.arg(),
                    self.scores[i].arg(),
                    Value::U32(n_docs as u32),
                ],
            })
            .collect())
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        for (i, (out, want)) in self.scores.iter().zip(&self.expected).enumerate() {
            let got = device.read_f32(out);
            check_f32(&format!("similarity query {i}"), &got, want, 1e-4)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut SimilarityScore::new(29), Scale::Tiny).unwrap();
    }

    #[test]
    fn gen_doc_is_sorted_unique() {
        let mut rng = SeededRng::seed_from_u64(0);
        for _ in 0..10 {
            let (t, w) = gen_doc(&mut rng, 100, 32);
            assert_eq!(t.len(), w.len());
            assert!(t.windows(2).all(|p| p[0] < p[1]));
        }
    }
}
