//! Curated co-scheduled kernel-pair scenarios for the pairwise-
//! interference study.
//!
//! Each scenario names two members: a registry workload plus either a
//! second registry workload or the `kgen` adversarial cache thrasher
//! ([`gwc_simt::kgen::generate_thrasher`]). The curation spans the
//! interference axis: pairs of memory-streaming kernels that fight for
//! the shared reuse stack (expected high interference), pairs where one
//! member is compute-bound and barely touches memory (expected low),
//! and the synthetic thrasher as an upper-bound aggressor no registry
//! pair matches.
//!
//! The expectation labels are hypotheses, not ground truth — experiment
//! E14 measures the actual interference signatures and clusters them;
//! disagreement between expectation and cluster is a finding, not a
//! bug.

use gwc_simt::exec::Device;
use gwc_simt::kgen;
use gwc_simt::SimtError;

use crate::registry::all_workloads;
use crate::workload::{LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// The second member of a pair scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPartner {
    /// A registry workload, by stable name.
    Registry(&'static str),
    /// The seeded `kgen` cache-thrashing aggressor.
    Thrasher,
}

/// Curator's interference hypothesis for a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interference {
    /// Both members stream memory; contention expected.
    High,
    /// At least one member is compute-bound; little contention expected.
    Low,
}

impl Interference {
    /// Lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Interference::High => "high",
            Interference::Low => "low",
        }
    }
}

/// One curated co-schedule scenario.
#[derive(Debug, Clone, Copy)]
pub struct PairScenario {
    /// Stable scenario name, `a+b`.
    pub name: &'static str,
    /// First member: a registry workload name.
    pub a: &'static str,
    /// Second member.
    pub partner: PairPartner,
    /// Curator's hypothesis.
    pub expected: Interference,
}

/// The curated scenario set, in stable order.
pub const PAIR_SCENARIOS: [PairScenario; 7] = [
    PairScenario {
        name: "matrix_mul+transpose",
        a: "matrix_mul",
        partner: PairPartner::Registry("transpose"),
        expected: Interference::High,
    },
    PairScenario {
        name: "spmv+stencil",
        a: "spmv",
        partner: PairPartner::Registry("stencil"),
        expected: Interference::High,
    },
    PairScenario {
        name: "bfs+needleman_wunsch",
        a: "bfs",
        partner: PairPartner::Registry("needleman_wunsch"),
        expected: Interference::High,
    },
    PairScenario {
        name: "parallel_reduction+black_scholes",
        a: "parallel_reduction",
        partner: PairPartner::Registry("black_scholes"),
        expected: Interference::Low,
    },
    PairScenario {
        name: "kmeans+cp",
        a: "kmeans",
        partner: PairPartner::Registry("cp"),
        expected: Interference::Low,
    },
    PairScenario {
        name: "nearest_neighbor+mri_q",
        a: "nearest_neighbor",
        partner: PairPartner::Registry("mri_q"),
        expected: Interference::Low,
    },
    PairScenario {
        name: "histogram+kgen_thrash",
        a: "histogram",
        partner: PairPartner::Thrasher,
        expected: Interference::High,
    },
];

/// Instantiates a registry workload by name with the study's derived
/// seeding (the same seed derivation as [`all_workloads`], so a pair
/// member is input-identical to its solo-study counterpart and the solo
/// profile cache covers it).
///
/// # Panics
///
/// Panics if `name` is not a registry workload — scenario membership is
/// validated by tests, so a miss here is a curation bug.
pub fn registry_member(name: &str, seed: u64) -> Box<dyn Workload> {
    all_workloads(seed)
        .into_iter()
        .find(|w| w.meta().name == name)
        .unwrap_or_else(|| panic!("pair scenario names unknown workload `{name}`"))
}

/// Instantiates a scenario's second member.
pub fn partner_member(partner: PairPartner, seed: u64) -> Box<dyn Workload> {
    match partner {
        PairPartner::Registry(name) => registry_member(name, seed),
        PairPartner::Thrasher => Box::new(ThrashWorkload::new(seed)),
    }
}

/// The `kgen` cache-thrashing aggressor wrapped as a workload, so the
/// pair study drives it through the same setup/launch/verify flow as
/// registry members.
#[derive(Debug)]
pub struct ThrashWorkload {
    seed: u64,
}

impl ThrashWorkload {
    /// Creates the aggressor with a deterministic generator seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Workload for ThrashWorkload {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "kgen_thrash",
            suite: Suite::Other,
            description: "seeded adversarial cache-thrashing partner (kgen)",
        }
    }

    fn setup(&mut self, device: &mut Device, _scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        // Geometry and footprint come from the thrash knobs; the study
        // scale does not apply (the aggressor's size IS its identity).
        let g = kgen::generate_thrasher(self.seed)?;
        let args = g.alloc_args(device);
        Ok(vec![LaunchSpec {
            label: "thrash".to_string(),
            kernel: g.kernel,
            config: g.config,
            args: args.args,
        }])
    }

    fn verify(&self, _device: &Device) -> Result<(), VerifyError> {
        // Generated kernels carry no CPU reference; their correctness is
        // covered by the cross-backend differential harness (kgen
        // kernels are safe by construction and diffed by the hundreds).
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn scenario_names_are_stable_and_unique() {
        let mut names: Vec<&str> = PAIR_SCENARIOS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PAIR_SCENARIOS.len(), "duplicate scenario");
        for s in &PAIR_SCENARIOS {
            let partner = match s.partner {
                PairPartner::Registry(n) => n,
                PairPartner::Thrasher => "kgen_thrash",
            };
            assert_eq!(s.name, format!("{}+{partner}", s.a), "name drifted");
        }
    }

    #[test]
    fn every_member_instantiates() {
        for s in &PAIR_SCENARIOS {
            let a = registry_member(s.a, 7);
            assert_eq!(a.meta().name, s.a);
            let b = partner_member(s.partner, 7);
            match s.partner {
                PairPartner::Registry(n) => assert_eq!(b.meta().name, n),
                PairPartner::Thrasher => assert_eq!(b.meta().name, "kgen_thrash"),
            }
        }
    }

    #[test]
    fn both_interference_classes_are_curated() {
        for class in [Interference::High, Interference::Low] {
            assert!(
                PAIR_SCENARIOS.iter().any(|s| s.expected == class),
                "no {} scenario",
                class.name()
            );
        }
    }

    #[test]
    fn thrasher_runs_as_a_workload() {
        let mut w = ThrashWorkload::new(7);
        run_workload(&mut w, Scale::Tiny).expect("thrasher runs and verifies");
    }
}
