//! `cp` — coulombic potential over a 2-D lattice (Parboil).
//!
//! Each thread owns a lattice point and loops over all atoms (in constant
//! memory), accumulating `q / sqrt(d² + ε)`. Compute-bound with `rsqrt`
//! SFU work, broadcast constant reads and perfectly coalesced output.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const EPS: f32 = 0.01;

/// See the [module docs](self).
#[derive(Debug)]
pub struct CoulombicPotential {
    seed: u64,
    out: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl CoulombicPotential {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            out: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for CoulombicPotential {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "cp",
            suite: Suite::Parboil,
            description: "coulombic potential lattice; rsqrt-heavy loop over const-memory atoms",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let dim = scale.pick(16, 32, 64) as u32; // lattice dim x dim
        let atoms = scale.pick(16, 64, 128) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let ax: Vec<f32> = (0..atoms).map(|_| rng.gen_range(0.0..dim as f32)).collect();
        let ay: Vec<f32> = (0..atoms).map(|_| rng.gen_range(0.0..dim as f32)).collect();
        let aq: Vec<f32> = (0..atoms).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let mut expected = vec![0.0f32; (dim * dim) as usize];
        for y in 0..dim {
            for x in 0..dim {
                let mut acc = 0.0f32;
                for a in 0..atoms as usize {
                    let dx = x as f32 - ax[a];
                    let dy = y as f32 - ay[a];
                    acc += aq[a] / (dx * dx + dy * dy + EPS).sqrt();
                }
                expected[(y * dim + x) as usize] = acc;
            }
        }
        self.expected = expected;

        let hax = device.alloc_const_f32(&ax);
        let hay = device.alloc_const_f32(&ay);
        let haq = device.alloc_const_f32(&aq);
        let hout = device.alloc_zeroed_f32((dim * dim) as usize);
        self.out = Some(hout);

        let mut b = KernelBuilder::new("cp_lattice");
        let pax = b.param_u32("ax");
        let pay = b.param_u32("ay");
        let paq = b.param_u32("aq");
        let pout = b.param_u32("out");
        let pdim = b.param_u32("dim");
        let pn = b.param_u32("atoms");
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let xf = b.to_f32(x);
        let yf = b.to_f32(y);
        let acc = b.var_f32(Value::F32(0.0));
        b.for_range_u32(Value::U32(0), pn, 1, |b, a| {
            let axa = b.index(pax, a, 4);
            let axv = b.ld_const_f32(axa);
            let aya = b.index(pay, a, 4);
            let ayv = b.ld_const_f32(aya);
            let aqa = b.index(paq, a, 4);
            let aqv = b.ld_const_f32(aqa);
            let dx = b.sub_f32(xf, axv);
            let dy = b.sub_f32(yf, ayv);
            let dx2 = b.mul_f32(dx, dx);
            let d2 = b.mad_f32(dy, dy, dx2);
            let d2e = b.add_f32(d2, Value::F32(EPS));
            let inv = b.rsqrt_f32(d2e);
            let next = b.mad_f32(aqv, inv, acc);
            b.assign(acc, next);
        });
        let idx = b.mad_u32(y, pdim, x);
        let oa = b.index(pout, idx, 4);
        b.st_global_f32(oa, acc);
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "cp_lattice".into(),
            kernel,
            config: LaunchConfig::new_2d(dim / 16, dim / 16, 16, 16),
            args: vec![
                hax.arg(),
                hay.arg(),
                haq.arg(),
                hout.arg(),
                Value::U32(dim),
                Value::U32(atoms),
            ],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let out = device.read_f32(self.out.as_ref().expect("setup"));
        check_f32("cp", &out, &self.expected, 5e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut CoulombicPotential::new(14), Scale::Tiny).unwrap();
    }
}
