//! Workloads from the Parboil benchmark suite.

pub mod cp;
pub mod mri_q;
pub mod sad;
pub mod spmv;
pub mod stencil;
pub mod tpacf;

pub use cp::CoulombicPotential;
pub use mri_q::MriQ;
pub use sad::Sad;
pub use spmv::Spmv;
pub use stencil::Stencil;
pub use tpacf::Tpacf;
