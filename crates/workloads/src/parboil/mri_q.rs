//! `mri-q` — non-Cartesian MRI reconstruction, Q computation (Parboil).
//!
//! Two kernels as in the original: `compute_phi_mag` (trivial element-wise
//! squares) and `compute_q` (each thread accumulates over every k-space
//! sample with `sin`/`cos` of a phase argument). The sample arrays live in
//! constant memory and broadcast to the whole warp — compute-bound SFU
//! work with perfect coalescing.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// See the [module docs](self).
#[derive(Debug)]
pub struct MriQ {
    seed: u64,
    qr: Option<BufferHandle>,
    qi: Option<BufferHandle>,
    phi_mag: Option<BufferHandle>,
    expected_qr: Vec<f32>,
    expected_qi: Vec<f32>,
    expected_phi: Vec<f32>,
}

impl MriQ {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            qr: None,
            qi: None,
            phi_mag: None,
            expected_qr: Vec::new(),
            expected_qi: Vec::new(),
            expected_phi: Vec::new(),
        }
    }
}

impl Workload for MriQ {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "mri_q",
            suite: Suite::Parboil,
            description: "MRI Q-matrix computation; SFU-heavy sin/cos over const-memory samples",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let num_x = scale.pick(128, 512, 2048) as u32;
        let num_k = scale.pick(32, 64, 256) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let r = |rng: &mut SeededRng| rng.gen_range(-1.0f32..1.0);
        let kx: Vec<f32> = (0..num_k).map(|_| r(&mut rng)).collect();
        let ky: Vec<f32> = (0..num_k).map(|_| r(&mut rng)).collect();
        let kz: Vec<f32> = (0..num_k).map(|_| r(&mut rng)).collect();
        let phi_r: Vec<f32> = (0..num_k).map(|_| r(&mut rng)).collect();
        let phi_i: Vec<f32> = (0..num_k).map(|_| r(&mut rng)).collect();
        let x: Vec<f32> = (0..num_x).map(|_| r(&mut rng)).collect();
        let y: Vec<f32> = (0..num_x).map(|_| r(&mut rng)).collect();
        let z: Vec<f32> = (0..num_x).map(|_| r(&mut rng)).collect();

        self.expected_phi = phi_r
            .iter()
            .zip(&phi_i)
            .map(|(a, b)| a * a + b * b)
            .collect();
        let mut eqr = vec![0.0f32; num_x as usize];
        let mut eqi = vec![0.0f32; num_x as usize];
        for i in 0..num_x as usize {
            for k in 0..num_k as usize {
                let arg = 2.0 * std::f32::consts::PI * (kx[k] * x[i] + ky[k] * y[i] + kz[k] * z[i]);
                eqr[i] += self.expected_phi[k] * arg.cos();
                eqi[i] += self.expected_phi[k] * arg.sin();
            }
        }
        self.expected_qr = eqr;
        self.expected_qi = eqi;

        let hkx = device.alloc_const_f32(&kx);
        let hky = device.alloc_const_f32(&ky);
        let hkz = device.alloc_const_f32(&kz);
        let hphir = device.alloc_f32(&phi_r);
        let hphii = device.alloc_f32(&phi_i);
        let hphimag = device.alloc_zeroed_f32(num_k as usize);
        let hx = device.alloc_f32(&x);
        let hy = device.alloc_f32(&y);
        let hz = device.alloc_f32(&z);
        let hqr = device.alloc_zeroed_f32(num_x as usize);
        let hqi = device.alloc_zeroed_f32(num_x as usize);
        self.qr = Some(hqr);
        self.qi = Some(hqi);
        self.phi_mag = Some(hphimag);

        // --- compute_phi_mag --------------------------------------------------
        let mut b = KernelBuilder::new("compute_phi_mag");
        let pr = b.param_u32("phi_r");
        let pi = b.param_u32("phi_i");
        let pm = b.param_u32("phi_mag");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let ra = b.index(pr, i, 4);
            let rv = b.ld_global_f32(ra);
            let ia = b.index(pi, i, 4);
            let iv = b.ld_global_f32(ia);
            let rr = b.mul_f32(rv, rv);
            let mag = b.mad_f32(iv, iv, rr);
            let ma = b.index(pm, i, 4);
            b.st_global_f32(ma, mag);
        });
        let phi_kernel = b.build()?;

        // --- compute_q ---------------------------------------------------------
        let mut b = KernelBuilder::new("compute_q");
        let pkx = b.param_u32("kx");
        let pky = b.param_u32("ky");
        let pkz = b.param_u32("kz");
        let pmag = b.param_u32("phi_mag");
        let px = b.param_u32("x");
        let py = b.param_u32("y");
        let pz = b.param_u32("z");
        let pqr = b.param_u32("qr");
        let pqi = b.param_u32("qi");
        let pk = b.param_u32("num_k");
        let i = b.global_tid_x();
        let xa = b.index(px, i, 4);
        let xv = b.ld_global_f32(xa);
        let ya = b.index(py, i, 4);
        let yv = b.ld_global_f32(ya);
        let za = b.index(pz, i, 4);
        let zv = b.ld_global_f32(za);
        let qr = b.var_f32(Value::F32(0.0));
        let qi = b.var_f32(Value::F32(0.0));
        b.for_range_u32(Value::U32(0), pk, 1, |b, k| {
            let ka = b.index(pkx, k, 4);
            let kxv = b.ld_const_f32(ka);
            let ka = b.index(pky, k, 4);
            let kyv = b.ld_const_f32(ka);
            let ka = b.index(pkz, k, 4);
            let kzv = b.ld_const_f32(ka);
            let t1 = b.mul_f32(kxv, xv);
            let t2 = b.mad_f32(kyv, yv, t1);
            let dot = b.mad_f32(kzv, zv, t2);
            let arg = b.mul_f32(dot, Value::F32(2.0 * std::f32::consts::PI));
            let c = b.cos_f32(arg);
            let s = b.sin_f32(arg);
            let ma = b.index(pmag, k, 4);
            let mag = b.ld_global_f32(ma);
            let nqr = b.mad_f32(mag, c, qr);
            b.assign(qr, nqr);
            let nqi = b.mad_f32(mag, s, qi);
            b.assign(qi, nqi);
        });
        let qra = b.index(pqr, i, 4);
        b.st_global_f32(qra, qr);
        let qia = b.index(pqi, i, 4);
        b.st_global_f32(qia, qi);
        let q_kernel = b.build()?;

        Ok(vec![
            LaunchSpec {
                label: "compute_phi_mag".into(),
                kernel: phi_kernel,
                config: LaunchConfig::linear(num_k, 128),
                args: vec![hphir.arg(), hphii.arg(), hphimag.arg(), Value::U32(num_k)],
            },
            LaunchSpec {
                label: "compute_q".into(),
                kernel: q_kernel,
                config: LaunchConfig::linear(num_x, 128),
                args: vec![
                    hkx.arg(),
                    hky.arg(),
                    hkz.arg(),
                    hphimag.arg(),
                    hx.arg(),
                    hy.arg(),
                    hz.arg(),
                    hqr.arg(),
                    hqi.arg(),
                    Value::U32(num_k),
                ],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let phi = device.read_f32(self.phi_mag.as_ref().expect("setup"));
        check_f32("phi_mag", &phi, &self.expected_phi, 1e-4)?;
        let qr = device.read_f32(self.qr.as_ref().expect("setup"));
        check_f32("qr", &qr, &self.expected_qr, 5e-2)?;
        let qi = device.read_f32(self.qi.as_ref().expect("setup"));
        check_f32("qi", &qi, &self.expected_qi, 5e-2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut MriQ::new(13), Scale::Tiny).unwrap();
    }
}
