//! `sad` — sum of absolute differences for motion estimation (Parboil).
//!
//! Each thread evaluates a 4×4 block at its position against nine search
//! displacements in the reference frame, keeping the best. Integer-heavy,
//! partially coalesced (row-wise neighbouring loads), with boundary guards
//! that diverge at frame edges.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BLOCK_PIX: i32 = 4;
const SEARCH: [(i32, i32); 9] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (0, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// See the [module docs](self).
#[derive(Debug)]
pub struct Sad {
    seed: u64,
    best: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl Sad {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            best: None,
            expected: Vec::new(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn cpu_sad(cur: &[u32], rf: &[u32], w: i32, h: i32, bx: i32, by: i32, dx: i32, dy: i32) -> u32 {
    let mut acc = 0u32;
    for py in 0..BLOCK_PIX {
        for px in 0..BLOCK_PIX {
            let cx = bx * BLOCK_PIX + px;
            let cy = by * BLOCK_PIX + py;
            let rx = (cx + dx).clamp(0, w - 1);
            let ry = (cy + dy).clamp(0, h - 1);
            let c = cur[(cy * w + cx) as usize];
            let r = rf[(ry * w + rx) as usize];
            acc += c.abs_diff(r);
        }
    }
    acc
}

impl Workload for Sad {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "sad",
            suite: Suite::Parboil,
            description: "4x4-block sum of absolute differences over a 9-point motion search",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let w = scale.pick(32, 64, 128) as i32;
        let h = w;
        let bw = w / BLOCK_PIX;
        let bh = h / BLOCK_PIX;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let cur: Vec<u32> = (0..w * h).map(|_| rng.gen_range(0..256)).collect();
        let rf: Vec<u32> = (0..w * h).map(|_| rng.gen_range(0..256)).collect();

        let mut expected = vec![0u32; (bw * bh) as usize];
        for by in 0..bh {
            for bx in 0..bw {
                let best = SEARCH
                    .iter()
                    .map(|&(dx, dy)| cpu_sad(&cur, &rf, w, h, bx, by, dx, dy))
                    .min()
                    .expect("nonempty search");
                expected[(by * bw + bx) as usize] = best;
            }
        }
        self.expected = expected;

        let hcur = device.alloc_u32(&cur);
        let href = device.alloc_u32(&rf);
        let hbest = device.alloc_zeroed_u32((bw * bh) as usize);
        self.best = Some(hbest);

        let mut b = KernelBuilder::new("sad_search");
        let pcur = b.param_u32("cur");
        let pref = b.param_u32("ref");
        let pbest = b.param_u32("best");
        let pw = b.param_u32("w");
        let ph = b.param_u32("h");
        let pbw = b.param_u32("bw");
        let bx = b.global_tid_x();
        let by = b.global_tid_y();

        let w_m1 = b.sub_u32(pw, Value::U32(1));
        let h_m1 = b.sub_u32(ph, Value::U32(1));
        let w_m1i = b.to_i32(w_m1);
        let h_m1i = b.to_i32(h_m1);
        let best = b.var_u32(Value::U32(u32::MAX));
        for (dx, dy) in SEARCH {
            let acc = b.var_u32(Value::U32(0));
            b.for_range_u32(Value::U32(0), Value::U32(BLOCK_PIX as u32), 1, |b, py| {
                b.for_range_u32(Value::U32(0), Value::U32(BLOCK_PIX as u32), 1, |b, px| {
                    let cx = b.mad_u32(bx, Value::U32(BLOCK_PIX as u32), px);
                    let cy = b.mad_u32(by, Value::U32(BLOCK_PIX as u32), py);
                    let cxi = b.to_i32(cx);
                    let cyi = b.to_i32(cy);
                    let rx0 = b.add_i32(cxi, Value::I32(dx));
                    let rx1 = b.max_i32(rx0, Value::I32(0));
                    let rxi = b.min_i32(rx1, w_m1i);
                    let ry0 = b.add_i32(cyi, Value::I32(dy));
                    let ry1 = b.max_i32(ry0, Value::I32(0));
                    let ryi = b.min_i32(ry1, h_m1i);
                    let rx = b.to_u32(rxi);
                    let ry = b.to_u32(ryi);
                    let cidx = b.mad_u32(cy, pw, cx);
                    let ca = b.index(pcur, cidx, 4);
                    let cv = b.ld_global_u32(ca);
                    let ridx = b.mad_u32(ry, pw, rx);
                    let ra = b.index(pref, ridx, 4);
                    let rv = b.ld_global_u32(ra);
                    // |c - r| on u32 via min/max.
                    let hi = b.max_u32(cv, rv);
                    let lo = b.min_u32(cv, rv);
                    let d = b.sub_u32(hi, lo);
                    let next = b.add_u32(acc, d);
                    b.assign(acc, next);
                });
            });
            let smaller = b.lt_u32(acc, best);
            let nb = b.sel_u32(smaller, acc, best);
            b.assign(best, nb);
        }
        let idx = b.mad_u32(by, pbw, bx);
        let oa = b.index(pbest, idx, 4);
        b.st_global_u32(oa, best);
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "sad_search".into(),
            kernel,
            config: LaunchConfig::new_2d(bw as u32 / 8, bh as u32 / 8, 8, 8),
            args: vec![
                hcur.arg(),
                href.arg(),
                hbest.arg(),
                Value::U32(w as u32),
                Value::U32(h as u32),
                Value::U32(bw as u32),
            ],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_u32(self.best.as_ref().expect("setup"));
        check_u32("sad", &got, &self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Sad::new(15), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_sad_zero_for_identical_frames() {
        let img: Vec<u32> = (0..64).collect();
        assert_eq!(cpu_sad(&img, &img, 8, 8, 1, 1, 0, 0), 0);
    }
}
