//! `spmv` — sparse matrix-vector multiply, CSR (Parboil).
//!
//! One thread per row; rows have skewed lengths, so warps diverge on the
//! row loop and the `x[col]` gathers scatter across memory — the classic
//! irregular workload.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// See the [module docs](self).
#[derive(Debug)]
pub struct Spmv {
    seed: u64,
    y: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl Spmv {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            y: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for Spmv {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "spmv",
            suite: Suite::Parboil,
            description: "CSR sparse matrix-vector multiply with skewed row lengths",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let rows = scale.pick(256, 1024, 4096) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        // Skewed row lengths: most rows short, a few long.
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for _ in 0..rows {
            let len = if rng.gen_bool(0.1) {
                rng.gen_range(16..64)
            } else {
                rng.gen_range(1..8)
            };
            for _ in 0..len {
                cols.push(rng.gen_range(0..rows));
                vals.push(rng.gen_range(-1.0f32..1.0));
            }
            row_ptr.push(cols.len() as u32);
        }
        let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let mut expected = vec![0.0f32; rows as usize];
        for r in 0..rows as usize {
            let (s, e) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            expected[r] = (s..e).map(|i| vals[i] * x[cols[i] as usize]).sum();
        }
        self.expected = expected;

        let hrp = device.alloc_u32(&row_ptr);
        let hcols = device.alloc_u32(&cols);
        let hvals = device.alloc_f32(&vals);
        let hx = device.alloc_f32(&x);
        let hy = device.alloc_zeroed_f32(rows as usize);
        self.y = Some(hy);

        let mut b = KernelBuilder::new("spmv_csr");
        let prp = b.param_u32("row_ptr");
        let pcols = b.param_u32("cols");
        let pvals = b.param_u32("vals");
        let px = b.param_u32("x");
        let py = b.param_u32("y");
        let pn = b.param_u32("rows");
        let r = b.global_tid_x();
        let in_range = b.lt_u32(r, pn);
        b.if_(in_range, |b| {
            let sa = b.index(prp, r, 4);
            let start = b.ld_global_u32(sa);
            let r1 = b.add_u32(r, Value::U32(1));
            let ea = b.index(prp, r1, 4);
            let end = b.ld_global_u32(ea);
            let acc = b.var_f32(Value::F32(0.0));
            let i = b.var_u32(start);
            b.while_(
                |b| b.lt_u32(i, end),
                |b| {
                    let ca = b.index(pcols, i, 4);
                    let col = b.ld_global_u32(ca);
                    let va = b.index(pvals, i, 4);
                    let v = b.ld_global_f32(va);
                    let xa = b.index(px, col, 4);
                    let xv = b.ld_global_f32(xa);
                    let next = b.mad_f32(v, xv, acc);
                    b.assign(acc, next);
                    let ni = b.add_u32(i, Value::U32(1));
                    b.assign(i, ni);
                },
            );
            let ya = b.index(py, r, 4);
            b.st_global_f32(ya, acc);
        });
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "spmv_csr".into(),
            kernel,
            config: LaunchConfig::linear(rows, 128),
            args: vec![
                hrp.arg(),
                hcols.arg(),
                hvals.arg(),
                hx.arg(),
                hy.arg(),
                Value::U32(rows),
            ],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let y = device.read_f32(self.y.as_ref().expect("setup"));
        check_f32("spmv", &y, &self.expected, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Spmv::new(16), Scale::Tiny).unwrap();
    }
}
