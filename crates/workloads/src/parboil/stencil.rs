//! `stencil` — iterative 5-point Jacobi stencil (Parboil).
//!
//! Ping-pong buffers over several sweeps; interior threads stream
//! neighbours (mostly coalesced with one-row strides), boundary threads
//! simply copy — a mild but persistent source of divergence at tile edges.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const ITERS: usize = 4;

/// See the [module docs](self).
#[derive(Debug)]
pub struct Stencil {
    seed: u64,
    result: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl Stencil {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            result: None,
            expected: Vec::new(),
        }
    }
}

fn cpu_sweep(src: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut dst = src.to_vec();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            dst[y * w + x] = 0.2
                * (src[y * w + x]
                    + src[y * w + x - 1]
                    + src[y * w + x + 1]
                    + src[(y - 1) * w + x]
                    + src[(y + 1) * w + x]);
        }
    }
    dst
}

impl Workload for Stencil {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "stencil",
            suite: Suite::Parboil,
            description: "iterative 5-point Jacobi stencil with ping-pong buffers",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let w = scale.pick(32, 64, 128) as u32;
        let h = w;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let input: Vec<f32> = (0..w * h).map(|_| rng.gen_range(0.0..10.0)).collect();
        let mut cur = input.clone();
        for _ in 0..ITERS {
            cur = cpu_sweep(&cur, w as usize, h as usize);
        }
        self.expected = cur;

        let ha = device.alloc_f32(&input);
        let hb = device.alloc_f32(&input);
        self.result = Some(if ITERS.is_multiple_of(2) { ha } else { hb });

        let mut b = KernelBuilder::new("stencil_sweep");
        let psrc = b.param_u32("src");
        let pdst = b.param_u32("dst");
        let pw = b.param_u32("w");
        let ph = b.param_u32("h");
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let idx = b.mad_u32(y, pw, x);
        let sa = b.index(psrc, idx, 4);
        let center = b.ld_global_f32(sa);
        let w_m1 = b.sub_u32(pw, Value::U32(1));
        let h_m1 = b.sub_u32(ph, Value::U32(1));
        let x_ok_lo = b.gt_u32(x, Value::U32(0));
        let x_ok_hi = b.lt_u32(x, w_m1);
        let y_ok_lo = b.gt_u32(y, Value::U32(0));
        let y_ok_hi = b.lt_u32(y, h_m1);
        let x_ok = b.and_pred(x_ok_lo, x_ok_hi);
        let y_ok = b.and_pred(y_ok_lo, y_ok_hi);
        let interior = b.and_pred(x_ok, y_ok);
        let result = b.var_f32(center);
        b.if_(interior, |b| {
            let la = b.offset(sa.base, -4);
            let left = b.ld_global_f32(la);
            let ra = b.offset(sa.base, 4);
            let right = b.ld_global_f32(ra);
            let up_idx = b.sub_u32(idx, pw);
            let ua = b.index(psrc, up_idx, 4);
            let up = b.ld_global_f32(ua);
            let dn_idx = b.add_u32(idx, pw);
            let da = b.index(psrc, dn_idx, 4);
            let down = b.ld_global_f32(da);
            let s1 = b.add_f32(center, left);
            let s2 = b.add_f32(s1, right);
            let s3 = b.add_f32(s2, up);
            let s4 = b.add_f32(s3, down);
            let avg = b.mul_f32(s4, Value::F32(0.2));
            b.assign(result, avg);
        });
        let da = b.index(pdst, idx, 4);
        b.st_global_f32(da, result);
        let kernel = b.build()?;

        let grid = LaunchConfig::new_2d(w / 16, h / 16, 16, 16);
        let mut launches = Vec::new();
        for it in 0..ITERS {
            let (src, dst) = if it % 2 == 0 { (ha, hb) } else { (hb, ha) };
            launches.push(LaunchSpec {
                label: "stencil_sweep".into(),
                kernel: kernel.clone(),
                config: grid,
                args: vec![src.arg(), dst.arg(), Value::U32(w), Value::U32(h)],
            });
        }
        Ok(launches)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_f32(self.result.as_ref().expect("setup"));
        check_f32("stencil", &got, &self.expected, 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Stencil::new(17), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_sweep_preserves_boundary() {
        // Squares are not harmonic, so interior cells must change.
        let img: Vec<f32> = (0..16).map(|i| (i * i) as f32).collect();
        let out = cpu_sweep(&img, 4, 4);
        assert_eq!(out[0], img[0]);
        assert_eq!(out[3], img[3]);
        assert_ne!(out[5], img[5]);
    }
}
