//! `tpacf` — two-point angular correlation function (Parboil).
//!
//! Each thread processes one observation point against the full dataset:
//! a dot product per pair followed by a *binary search* over the angular
//! bin boundaries — a data-dependent branchy loop — and a shared-memory
//! histogram update, merged to global at the end. One of the most
//! divergence- and atomic-intensive workloads in the suite.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BINS: u32 = 16;
const BLOCK: u32 = 128;

/// See the [module docs](self).
#[derive(Debug)]
pub struct Tpacf {
    seed: u64,
    hist: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl Tpacf {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            hist: None,
            expected: Vec::new(),
        }
    }
}

/// Bin boundaries on the dot-product axis, ascending in `[-1, 1]`.
fn boundaries() -> Vec<f32> {
    (1..BINS)
        .map(|i| -1.0 + 2.0 * i as f32 / BINS as f32)
        .collect()
}

fn cpu_bin(dot: f32, bounds: &[f32]) -> usize {
    // First bin whose upper boundary exceeds the dot product.
    bounds.iter().position(|&b| dot < b).unwrap_or(bounds.len())
}

impl Workload for Tpacf {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "tpacf",
            suite: Suite::Parboil,
            description: "angular correlation histogram with per-pair binary search binning",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(128, 256, 1024) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        // Unit vectors on the sphere.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for _ in 0..n {
            let (mut x, mut y, mut z): (f32, f32, f32) = (
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            let norm = (x * x + y * y + z * z).sqrt().max(1e-3);
            x /= norm;
            y /= norm;
            z /= norm;
            xs.push(x);
            ys.push(y);
            zs.push(z);
        }
        let bounds = boundaries();
        let mut expected = vec![0u32; BINS as usize];
        for i in 0..n as usize {
            for j in 0..n as usize {
                // Mirror the kernel's mul + two fused MADs bit-exactly so
                // boundary cases bin identically.
                let t1 = xs[i] * xs[j];
                let t2 = ys[i].mul_add(ys[j], t1);
                let dot = zs[i].mul_add(zs[j], t2);
                expected[cpu_bin(dot, &bounds)] += 1;
            }
        }
        self.expected = expected;

        let hx = device.alloc_f32(&xs);
        let hy = device.alloc_f32(&ys);
        let hz = device.alloc_f32(&zs);
        let hbounds = device.alloc_const_f32(&bounds);
        let hhist = device.alloc_zeroed_u32(BINS as usize);
        self.hist = Some(hhist);

        let mut b = KernelBuilder::new("tpacf_hist");
        let px = b.param_u32("x");
        let py = b.param_u32("y");
        let pz = b.param_u32("z");
        let pb = b.param_u32("bounds");
        let phist = b.param_u32("hist");
        let pn = b.param_u32("n");
        let sbins = b.alloc_shared(BINS * 4);

        let tid = b.var_u32(b.tid_x());
        let zeroer = b.lt_u32(tid, Value::U32(BINS));
        b.if_(zeroer, |b| {
            let sa = b.index(sbins, tid, 4);
            b.st_shared_u32(sa, Value::U32(0));
        });
        b.barrier();

        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let xa = b.index(px, i, 4);
            let xi = b.ld_global_f32(xa);
            let ya = b.index(py, i, 4);
            let yi = b.ld_global_f32(ya);
            let za = b.index(pz, i, 4);
            let zi = b.ld_global_f32(za);
            b.for_range_u32(Value::U32(0), pn, 1, |b, j| {
                let xa = b.index(px, j, 4);
                let xj = b.ld_global_f32(xa);
                let ya = b.index(py, j, 4);
                let yj = b.ld_global_f32(ya);
                let za = b.index(pz, j, 4);
                let zj = b.ld_global_f32(za);
                let t1 = b.mul_f32(xi, xj);
                let t2 = b.mad_f32(yi, yj, t1);
                let dot = b.mad_f32(zi, zj, t2);
                // Binary search over the BINS-1 ascending boundaries.
                let lo = b.var_u32(Value::U32(0));
                let hi = b.var_u32(Value::U32(BINS - 1));
                b.while_(
                    |b| b.lt_u32(lo, hi),
                    |b| {
                        let sum = b.add_u32(lo, hi);
                        let mid = b.shr_u32(sum, Value::U32(1));
                        let ba = b.index(pb, mid, 4);
                        let bound = b.ld_const_f32(ba);
                        let below = b.lt_f32(dot, bound);
                        let mid1 = b.add_u32(mid, Value::U32(1));
                        let nlo = b.sel_u32(below, lo, mid1);
                        let nhi = b.sel_u32(below, mid, hi);
                        b.assign(lo, nlo);
                        b.assign(hi, nhi);
                    },
                );
                let sa = b.index(sbins, lo, 4);
                b.atomic_add_shared_u32(sa, Value::U32(1));
            });
        });
        b.barrier();
        b.if_(zeroer, |b| {
            let sa = b.index(sbins, tid, 4);
            let count = b.ld_shared_u32(sa);
            let ga = b.index(phist, tid, 4);
            b.atomic_add_global_u32(ga, count);
        });
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "tpacf_hist".into(),
            kernel,
            config: LaunchConfig::linear(n, BLOCK),
            args: vec![
                hx.arg(),
                hy.arg(),
                hz.arg(),
                hbounds.arg(),
                hhist.arg(),
                Value::U32(n),
            ],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_u32(self.hist.as_ref().expect("setup"));
        check_u32("tpacf", &got, &self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Tpacf::new(18), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_bin_edges() {
        let b = boundaries();
        assert_eq!(cpu_bin(-1.0, &b), 0);
        assert_eq!(cpu_bin(0.999, &b), BINS as usize - 1);
        // A value exactly on a boundary goes to the upper bin.
        assert_eq!(cpu_bin(b[0], &b), 1);
    }
}
