//! The workload registry: every benchmark in the study population.

use crate::other::{MummerGpu, SimilarityScore};
use crate::parboil::{CoulombicPotential, MriQ, Sad, Spmv, Stencil, Tpacf};
use crate::rodinia::{
    BackProp, Bfs, HotSpot, HybridSort, KMeansWorkload, NearestNeighbor, NeedlemanWunsch,
    PathFinder, Srad,
};
use crate::sdk::{
    BitonicSort, BlackScholes, ConvolutionSeparable, Histogram, MatrixMul, ParallelReduction,
    ScanLargeArrays, Transpose, VectorAdd,
};
use crate::workload::{Workload, WorkloadMeta};

/// Every workload in the study, each seeded deterministically from
/// `seed` (a different derived seed per workload, so inputs are
/// uncorrelated but the whole study is reproducible).
pub fn all_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    let s = |i: u64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
    vec![
        // CUDA SDK
        Box::new(VectorAdd::new(s(1))),
        Box::new(ParallelReduction::new(s(2))),
        Box::new(ScanLargeArrays::new(s(3))),
        Box::new(MatrixMul::new(s(4))),
        Box::new(Transpose::new(s(5))),
        Box::new(Histogram::new(s(6))),
        Box::new(BlackScholes::new(s(7))),
        Box::new(ConvolutionSeparable::new(s(8))),
        Box::new(BitonicSort::new(s(9))),
        // Parboil
        Box::new(MriQ::new(s(10))),
        Box::new(CoulombicPotential::new(s(11))),
        Box::new(Sad::new(s(12))),
        Box::new(Tpacf::new(s(13))),
        Box::new(Spmv::new(s(14))),
        Box::new(Stencil::new(s(15))),
        // Rodinia
        Box::new(KMeansWorkload::new(s(16))),
        Box::new(NearestNeighbor::new(s(17))),
        Box::new(BackProp::new(s(18))),
        Box::new(HotSpot::new(s(19))),
        Box::new(Srad::new(s(20))),
        Box::new(NeedlemanWunsch::new(s(21))),
        Box::new(Bfs::new(s(22))),
        Box::new(PathFinder::new(s(23))),
        Box::new(HybridSort::new(s(24))),
        // Other
        Box::new(MummerGpu::new(s(25))),
        Box::new(SimilarityScore::new(s(26))),
    ]
}

/// Metadata of every registered workload.
pub fn all_metas(seed: u64) -> Vec<WorkloadMeta> {
    all_workloads(seed).iter().map(|w| w.meta()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Suite;

    #[test]
    fn registry_has_26_workloads() {
        assert_eq!(all_workloads(1).len(), 26);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_metas(1).iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn every_suite_is_represented() {
        let metas = all_metas(1);
        for suite in Suite::ALL {
            assert!(
                metas.iter().any(|m| m.suite == suite),
                "no workload in {suite}"
            );
        }
    }

    #[test]
    fn paper_highlighted_workloads_present() {
        let metas = all_metas(1);
        for name in [
            "similarity_score",
            "parallel_reduction",
            "scan_large_arrays",
            "mummer_gpu",
            "hybrid_sort",
            "nearest_neighbor",
            "kmeans",
        ] {
            assert!(metas.iter().any(|m| m.name == name), "missing {name}");
        }
    }
}
