//! The workload registry: every benchmark in the study population.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::other::{MummerGpu, SimilarityScore};
use crate::parboil::{CoulombicPotential, MriQ, Sad, Spmv, Stencil, Tpacf};
use crate::rodinia::{
    BackProp, Bfs, HotSpot, HybridSort, KMeansWorkload, NearestNeighbor, NeedlemanWunsch,
    PathFinder, Srad,
};
use crate::sdk::{
    BitonicSort, BlackScholes, ConvolutionSeparable, Histogram, MatrixMul, ParallelReduction,
    ScanLargeArrays, Transpose, VectorAdd,
};
use crate::workload::{LaunchSpec, Scale, StudyScale, VerifyError, Workload, WorkloadMeta};

use gwc_simt::exec::Device;
use gwc_simt::SimtError;

/// Every workload in the study, each seeded deterministically from
/// `seed` (a different derived seed per workload, so inputs are
/// uncorrelated but the whole study is reproducible).
pub fn all_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    let s = |i: u64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
    vec![
        // CUDA SDK
        Box::new(VectorAdd::new(s(1))),
        Box::new(ParallelReduction::new(s(2))),
        Box::new(ScanLargeArrays::new(s(3))),
        Box::new(MatrixMul::new(s(4))),
        Box::new(Transpose::new(s(5))),
        Box::new(Histogram::new(s(6))),
        Box::new(BlackScholes::new(s(7))),
        Box::new(ConvolutionSeparable::new(s(8))),
        Box::new(BitonicSort::new(s(9))),
        // Parboil
        Box::new(MriQ::new(s(10))),
        Box::new(CoulombicPotential::new(s(11))),
        Box::new(Sad::new(s(12))),
        Box::new(Tpacf::new(s(13))),
        Box::new(Spmv::new(s(14))),
        Box::new(Stencil::new(s(15))),
        // Rodinia
        Box::new(KMeansWorkload::new(s(16))),
        Box::new(NearestNeighbor::new(s(17))),
        Box::new(BackProp::new(s(18))),
        Box::new(HotSpot::new(s(19))),
        Box::new(Srad::new(s(20))),
        Box::new(NeedlemanWunsch::new(s(21))),
        Box::new(Bfs::new(s(22))),
        Box::new(PathFinder::new(s(23))),
        Box::new(HybridSort::new(s(24))),
        // Other
        Box::new(MummerGpu::new(s(25))),
        Box::new(SimilarityScore::new(s(26))),
    ]
}

/// Metadata of every registered workload.
pub fn all_metas(seed: u64) -> Vec<WorkloadMeta> {
    all_workloads(seed).iter().map(|w| w.meta()).collect()
}

/// Replicas beyond the canonical population in a [`StudyScale::Large`]
/// study (so the large population is `(1 + LARGE_REPLICAS) * 26`
/// workloads).
pub const LARGE_REPLICAS: u64 = 5;

/// Seed stride between replicas — a large odd constant so replica input
/// seeds are uncorrelated with each other and with the base population.
const REPLICA_SEED_STRIDE: u64 = 0xA076_1D64_78BD_642F;

/// The study population at a given [`StudyScale`].
///
/// `Standard` is exactly [`all_workloads`]. `Large` prepends that same
/// base population **unchanged** (same names, same derived seeds — so a
/// profile cache warmed by a standard study fully covers it) and appends
/// [`LARGE_REPLICAS`] parameter-swept replicas of every workload: replica
/// `i` derives its inputs from `seed ^ i * STRIDE`, runs under its own
/// problem scale (odd replicas [`Scale::Tiny`], even [`Scale::Small`])
/// and registers as `name#i`.
pub fn study_workloads(seed: u64, scale: StudyScale) -> Vec<Box<dyn Workload>> {
    let mut population = all_workloads(seed);
    if scale == StudyScale::Large {
        for i in 1..=LARGE_REPLICAS {
            let scale_override = if i % 2 == 1 {
                Scale::Tiny
            } else {
                Scale::Small
            };
            for inner in all_workloads(seed ^ i.wrapping_mul(REPLICA_SEED_STRIDE)) {
                population.push(Box::new(ReplicaWorkload::new(
                    inner,
                    i as u32,
                    scale_override,
                )));
            }
        }
    }
    population
}

/// Metadata of the population at a given [`StudyScale`].
pub fn study_metas(seed: u64, scale: StudyScale) -> Vec<WorkloadMeta> {
    study_workloads(seed, scale)
        .iter()
        .map(|w| w.meta())
        .collect()
}

/// Interns `base#replica` so replica names can live in
/// [`WorkloadMeta::name`]'s `&'static str`. The map deduplicates, so the
/// leak is bounded by the set of distinct replica names ever requested.
fn replica_name(base: &str, replica: u32) -> &'static str {
    static NAMES: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let key = format!("{base}#{replica}");
    let mut names = NAMES
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(&interned) = names.get(&key) {
        return interned;
    }
    let interned: &'static str = Box::leak(key.clone().into_boxed_str());
    names.insert(key, interned);
    interned
}

/// A parameter-swept replica of a registry workload: same algorithm,
/// independent input seed, its own problem scale, registered under
/// `name#replica`. Used only by [`StudyScale::Large`] populations.
struct ReplicaWorkload {
    inner: Box<dyn Workload>,
    name: &'static str,
    scale: Scale,
}

impl ReplicaWorkload {
    fn new(inner: Box<dyn Workload>, replica: u32, scale: Scale) -> Self {
        let name = replica_name(inner.meta().name, replica);
        Self { inner, name, scale }
    }
}

impl Workload for ReplicaWorkload {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: self.name,
            ..self.inner.meta()
        }
    }

    fn setup(&mut self, device: &mut Device, _scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        // The replica's own scale is part of its identity (it is what
        // makes the sweep a sweep), so the study-wide scale is ignored.
        self.inner.setup(device, self.scale)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        self.inner.verify(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Suite;

    #[test]
    fn registry_has_26_workloads() {
        assert_eq!(all_workloads(1).len(), 26);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_metas(1).iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn every_suite_is_represented() {
        let metas = all_metas(1);
        for suite in Suite::ALL {
            assert!(
                metas.iter().any(|m| m.suite == suite),
                "no workload in {suite}"
            );
        }
    }

    #[test]
    fn standard_population_is_the_registry() {
        let std_names: Vec<String> = study_metas(7, StudyScale::Standard)
            .iter()
            .map(|m| m.name.to_string())
            .collect();
        let base: Vec<String> = all_metas(7).iter().map(|m| m.name.to_string()).collect();
        assert_eq!(std_names, base);
    }

    #[test]
    fn large_population_replicates_with_unique_names() {
        let metas = study_metas(7, StudyScale::Large);
        assert_eq!(metas.len(), 26 * (1 + LARGE_REPLICAS as usize));
        let mut names: Vec<&str> = metas.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), metas.len(), "replica names collide");
        // The base population leads, unchanged.
        let base: Vec<&str> = all_metas(7).iter().map(|m| m.name).collect();
        assert_eq!(
            &metas[..26].iter().map(|m| m.name).collect::<Vec<_>>(),
            &base
        );
        assert!(metas[26].name.ends_with("#1"));
    }

    #[test]
    fn replica_names_intern_to_one_allocation() {
        let a = study_metas(7, StudyScale::Large)[26].name;
        let b = study_metas(7, StudyScale::Large)[26].name;
        assert!(std::ptr::eq(a, b), "interning should dedup replica names");
    }

    #[test]
    fn replica_runs_and_verifies() {
        use crate::workload::run_workload;
        let mut population = study_workloads(7, StudyScale::Large);
        // First replica of vector_add: cheap end-to-end sanity check.
        let w = population
            .iter_mut()
            .find(|w| w.meta().name == "vector_add#1")
            .expect("replica in population");
        run_workload(w.as_mut(), Scale::Tiny).expect("replica verifies");
    }

    #[test]
    fn paper_highlighted_workloads_present() {
        let metas = all_metas(1);
        for name in [
            "similarity_score",
            "parallel_reduction",
            "scan_large_arrays",
            "mummer_gpu",
            "hybrid_sort",
            "nearest_neighbor",
            "kmeans",
        ] {
            assert!(metas.iter().any(|m| m.name == name), "missing {name}");
        }
    }
}
