//! Internal seeded PRNG for workload input generation.
//!
//! The workloads previously drew their inputs from the external `rand`
//! crate. Input generation only needs a fast, *reproducible* stream of
//! uniform values, so this module provides a small self-contained
//! generator (xoshiro256++ seeded via splitmix64) and the narrow slice
//! of the `rand` API the workloads actually use: `seed_from_u64`,
//! `gen_range` over integer/float ranges, and `gen_bool`.
//!
//! Determinism contract: the sequence produced for a given seed is part
//! of the repo's reproducibility surface — the golden regen snapshot and
//! the determinism test suite both depend on it. Changing the algorithm
//! or the range-mapping below invalidates `results/` snapshots (re-bless
//! with `GWC_BLESS=1`).

/// A small deterministic PRNG: xoshiro256++ state, splitmix64 seeding.
#[derive(Debug, Clone)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Seeds the generator from a single `u64`, expanding it with
    /// splitmix64 (the canonical xoshiro seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A range that [`SeededRng::gen_range`] can sample uniformly, producing
/// values of type `T` (the type parameter lets literal ranges infer their
/// element type from the use site, as `rand`'s `SampleRange` does).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SeededRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut SeededRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SeededRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut SeededRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f32() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut SeededRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(7);
        let mut b = SeededRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::seed_from_u64(1);
        let mut b = SeededRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SeededRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(1u32..=8);
            assert!((1..=8).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = SeededRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SeededRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(0.25f64..10.0);
            assert!((0.25..10.0).contains(&w));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = SeededRng::seed_from_u64(5);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "lo={lo} hi={hi}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SeededRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((700..1300).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SeededRng::seed_from_u64(0).gen_range(5..5);
    }
}
