//! `backprop` — neural-network training step (Rodinia).
//!
//! `layerforward`: each block owns one hidden unit and reduces
//! `w[i][j] * in[i]` over the input layer in shared memory (barriered
//! tree). `adjust_weights`: streaming weight update from the hidden
//! deltas — an outer-product write pattern.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BLOCK: u32 = 128;
const ETA: f32 = 0.3;

/// See the [module docs](self).
#[derive(Debug)]
pub struct BackProp {
    seed: u64,
    hidden: Option<BufferHandle>,
    weights: Option<BufferHandle>,
    expected_hidden: Vec<f32>,
    expected_weights: Vec<f32>,
}

impl BackProp {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            hidden: None,
            weights: None,
            expected_hidden: Vec::new(),
            expected_weights: Vec::new(),
        }
    }
}

impl Workload for BackProp {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "back_prop",
            suite: Suite::Rodinia,
            description: "neural net layer-forward reduction and weight-adjust kernels",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let inputs = (scale.pick(128, 512, 2048) as u32 / BLOCK).max(1) * BLOCK;
        let hidden_units = scale.pick(8, 16, 64) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let input: Vec<f32> = (0..inputs).map(|_| rng.gen_range(0.0..1.0)).collect();
        // Weights stored input-major: w[i * hidden + j].
        let weights: Vec<f32> = (0..inputs * hidden_units)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        let deltas: Vec<f32> = (0..hidden_units)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();

        // CPU reference. The GPU reduces block-partials in thread order, so
        // use a per-chunk tree-compatible sum with tolerance in verify.
        let mut expected_hidden = vec![0.0f32; hidden_units as usize];
        for j in 0..hidden_units as usize {
            let mut acc = 0.0f32;
            for i in 0..inputs as usize {
                acc += weights[i * hidden_units as usize + j] * input[i];
            }
            expected_hidden[j] = acc;
        }
        let mut expected_weights = weights.clone();
        for i in 0..inputs as usize {
            for j in 0..hidden_units as usize {
                expected_weights[i * hidden_units as usize + j] += ETA * deltas[j] * input[i];
            }
        }
        self.expected_hidden = expected_hidden;
        self.expected_weights = expected_weights;

        let hin = device.alloc_f32(&input);
        let hw = device.alloc_f32(&weights);
        let hdelta = device.alloc_f32(&deltas);
        let hhidden = device.alloc_zeroed_f32(hidden_units as usize);
        self.hidden = Some(hhidden);
        self.weights = Some(hw);

        // --- layerforward: one block per hidden unit ---------------------------
        let mut b = KernelBuilder::new("bp_layerforward");
        let pin = b.param_u32("in");
        let pw = b.param_u32("w");
        let pout = b.param_u32("hidden");
        let pinputs = b.param_u32("inputs");
        let phidden = b.param_u32("hidden_units");
        let smem = b.alloc_shared(BLOCK * 4);
        let tid = b.var_u32(b.tid_x());
        let j = b.var_u32(b.ctaid_x());
        // Strided accumulation: each thread sums i = tid, tid+BLOCK, ...
        let acc = b.var_f32(Value::F32(0.0));
        let i = b.var_u32(tid);
        b.while_(
            |b| b.lt_u32(i, pinputs),
            |b| {
                let ia = b.index(pin, i, 4);
                let iv = b.ld_global_f32(ia);
                let widx = b.mad_u32(i, phidden, j);
                let wa = b.index(pw, widx, 4);
                let wv = b.ld_global_f32(wa);
                let next = b.mad_f32(wv, iv, acc);
                b.assign(acc, next);
                let ni = b.add_u32(i, Value::U32(BLOCK));
                b.assign(i, ni);
            },
        );
        let sa = b.index(smem, tid, 4);
        b.st_shared_f32(sa, acc);
        b.barrier();
        let s = b.var_u32(Value::U32(BLOCK / 2));
        b.while_(
            |b| b.gt_u32(s, Value::U32(0)),
            |b| {
                let active = b.lt_u32(tid, s);
                b.if_(active, |b| {
                    let other = b.add_u32(tid, s);
                    let oa = b.index(smem, other, 4);
                    let ov = b.ld_shared_f32(oa);
                    let ma = b.index(smem, tid, 4);
                    let mv = b.ld_shared_f32(ma);
                    let sum = b.add_f32(mv, ov);
                    b.st_shared_f32(ma, sum);
                });
                b.barrier();
                let half = b.shr_u32(s, Value::U32(1));
                b.assign(s, half);
            },
        );
        let leader = b.eq_u32(tid, Value::U32(0));
        b.if_(leader, |b| {
            let r = b.index(smem, Value::U32(0), 4);
            let total = b.ld_shared_f32(r);
            let oa = b.index(pout, j, 4);
            b.st_global_f32(oa, total);
        });
        let forward = b.build()?;

        // --- adjust_weights: one thread per weight -----------------------------
        let mut b = KernelBuilder::new("bp_adjust_weights");
        let pin = b.param_u32("in");
        let pw = b.param_u32("w");
        let pdelta = b.param_u32("delta");
        let phidden = b.param_u32("hidden_units");
        let ptotal = b.param_u32("total");
        let g = b.global_tid_x();
        let in_range = b.lt_u32(g, ptotal);
        b.if_(in_range, |b| {
            let i = b.div_u32(g, phidden);
            let j = b.rem_u32(g, phidden);
            let ia = b.index(pin, i, 4);
            let iv = b.ld_global_f32(ia);
            let da = b.index(pdelta, j, 4);
            let dv = b.ld_global_f32(da);
            let wa = b.index(pw, g, 4);
            let wv = b.ld_global_f32(wa);
            let scaled = b.mul_f32(dv, Value::F32(ETA));
            let upd = b.mad_f32(scaled, iv, wv);
            b.st_global_f32(wa, upd);
        });
        let adjust = b.build()?;

        let total_w = inputs * hidden_units;
        Ok(vec![
            LaunchSpec {
                label: "bp_layerforward".into(),
                kernel: forward,
                config: LaunchConfig::new(hidden_units, BLOCK),
                args: vec![
                    hin.arg(),
                    hw.arg(),
                    hhidden.arg(),
                    Value::U32(inputs),
                    Value::U32(hidden_units),
                ],
            },
            LaunchSpec {
                label: "bp_adjust_weights".into(),
                kernel: adjust,
                config: LaunchConfig::linear(total_w, BLOCK),
                args: vec![
                    hin.arg(),
                    hw.arg(),
                    hdelta.arg(),
                    Value::U32(hidden_units),
                    Value::U32(total_w),
                ],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let hidden = device.read_f32(self.hidden.as_ref().expect("setup"));
        check_f32("hidden", &hidden, &self.expected_hidden, 1e-3)?;
        let w = device.read_f32(self.weights.as_ref().expect("setup"));
        check_f32("weights", &w, &self.expected_weights, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut BackProp::new(21), Scale::Tiny).unwrap();
    }
}
