//! `bfs` — breadth-first search on an irregular graph (Rodinia).
//!
//! Level-synchronous frontier expansion with the original's two kernels:
//! kernel 1 visits each frontier node's neighbours (data-dependent edge
//! loops, scattered reads) and marks an *updating* mask; kernel 2 promotes
//! the updating mask to the next frontier and raises a "still work"
//! flag. The host relaunches until the flag stays down.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// Sentinel cost for unreached nodes.
const UNREACHED: u32 = u32::MAX;

/// See the [module docs](self).
#[derive(Debug)]
pub struct Bfs {
    seed: u64,
    cost: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl Bfs {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            cost: None,
            expected: Vec::new(),
        }
    }
}

fn cpu_bfs(row_ptr: &[u32], edges: &[u32], n: usize, src: usize) -> Vec<u32> {
    let mut cost = vec![UNREACHED; n];
    cost[src] = 0;
    let mut frontier = vec![src];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &eu in &edges[row_ptr[v] as usize..row_ptr[v + 1] as usize] {
                let u = eu as usize;
                if cost[u] == UNREACHED {
                    cost[u] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    cost
}

impl Workload for Bfs {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "bfs",
            suite: Suite::Rodinia,
            description: "level-synchronous BFS with frontier masks over a CSR graph",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(256, 1024, 8192);
        let mut rng = SeededRng::seed_from_u64(self.seed);
        // Random graph with average degree ~4 plus a ring for connectivity.
        let mut adj: Vec<Vec<u32>> = (0..n).map(|v| vec![((v + 1) % n) as u32]).collect();
        for _ in 0..3 * n {
            let a = rng.gen_range(0..n);
            let bn = rng.gen_range(0..n);
            adj[a].push(bn as u32);
        }
        let mut row_ptr = vec![0u32];
        let mut edges = Vec::new();
        for v in &adj {
            edges.extend_from_slice(v);
            row_ptr.push(edges.len() as u32);
        }
        self.expected = cpu_bfs(&row_ptr, &edges, n, 0);
        let depth = *self
            .expected
            .iter()
            .filter(|&&c| c != UNREACHED)
            .max()
            .expect("source reached") as usize;

        let hrp = device.alloc_u32(&row_ptr);
        let hedges = device.alloc_u32(&edges);
        let mut mask = vec![0u32; n];
        mask[0] = 1;
        let hmask = device.alloc_u32(&mask);
        let hupdating = device.alloc_zeroed_u32(n);
        let mut cost = vec![UNREACHED; n];
        cost[0] = 0;
        let hcost = device.alloc_u32(&cost);
        let hflag = device.alloc_zeroed_u32(1);
        self.cost = Some(hcost);

        // --- kernel 1: expand frontier ------------------------------------------
        let mut b = KernelBuilder::new("bfs_expand");
        let prp = b.param_u32("row_ptr");
        let pedges = b.param_u32("edges");
        let pmask = b.param_u32("mask");
        let pupd = b.param_u32("updating");
        let pcost = b.param_u32("cost");
        let pn = b.param_u32("n");
        let v = b.global_tid_x();
        let in_range = b.lt_u32(v, pn);
        b.if_(in_range, |b| {
            let ma = b.index(pmask, v, 4);
            let m = b.ld_global_u32(ma);
            let active = b.eq_u32(m, Value::U32(1));
            b.if_(active, |b| {
                b.st_global_u32(ma, Value::U32(0));
                let ca = b.index(pcost, v, 4);
                let my_cost = b.ld_global_u32(ca);
                let next_cost = b.add_u32(my_cost, Value::U32(1));
                let sa = b.index(prp, v, 4);
                let start = b.ld_global_u32(sa);
                let v1 = b.add_u32(v, Value::U32(1));
                let ea = b.index(prp, v1, 4);
                let end = b.ld_global_u32(ea);
                let e = b.var_u32(start);
                b.while_(
                    |b| b.lt_u32(e, end),
                    |b| {
                        let eaddr = b.index(pedges, e, 4);
                        let u = b.ld_global_u32(eaddr);
                        let uca = b.index(pcost, u, 4);
                        let ucost = b.ld_global_u32(uca);
                        let unvisited = b.eq_u32(ucost, Value::U32(UNREACHED));
                        b.if_(unvisited, |b| {
                            b.st_global_u32(uca, next_cost);
                            let ua = b.index(pupd, u, 4);
                            b.st_global_u32(ua, Value::U32(1));
                        });
                        let ne = b.add_u32(e, Value::U32(1));
                        b.assign(e, ne);
                    },
                );
            });
        });
        let expand = b.build()?;

        // --- kernel 2: promote updating mask --------------------------------------
        let mut b = KernelBuilder::new("bfs_update");
        let pmask = b.param_u32("mask");
        let pupd = b.param_u32("updating");
        let pflag = b.param_u32("flag");
        let pn = b.param_u32("n");
        let v = b.global_tid_x();
        let in_range = b.lt_u32(v, pn);
        b.if_(in_range, |b| {
            let ua = b.index(pupd, v, 4);
            let u = b.ld_global_u32(ua);
            let set = b.eq_u32(u, Value::U32(1));
            b.if_(set, |b| {
                let ma = b.index(pmask, v, 4);
                b.st_global_u32(ma, Value::U32(1));
                b.st_global_u32(ua, Value::U32(0));
                let fa = b.offset(pflag, 0);
                b.st_global_u32(fa, Value::U32(1));
            });
        });
        let update = b.build()?;

        // The true host loop polls the flag; we know the BFS depth from the
        // reference, so emit exactly `depth` rounds (the final round finds
        // nothing and leaves the flag down).
        let cfg = LaunchConfig::linear(n as u32, 128);
        let mut launches = Vec::new();
        for _ in 0..=depth {
            launches.push(LaunchSpec {
                label: "bfs_expand".into(),
                kernel: expand.clone(),
                config: cfg,
                args: vec![
                    hrp.arg(),
                    hedges.arg(),
                    hmask.arg(),
                    hupdating.arg(),
                    hcost.arg(),
                    Value::U32(n as u32),
                ],
            });
            launches.push(LaunchSpec {
                label: "bfs_update".into(),
                kernel: update.clone(),
                config: cfg,
                args: vec![
                    hmask.arg(),
                    hupdating.arg(),
                    hflag.arg(),
                    Value::U32(n as u32),
                ],
            });
        }
        Ok(launches)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_u32(self.cost.as_ref().expect("setup"));
        check_u32("bfs cost", &got, &self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Bfs::new(25), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_bfs_ring() {
        // Pure ring of 4 nodes: distances 0,1,2,3.
        let row_ptr = vec![0, 1, 2, 3, 4];
        let edges = vec![1, 2, 3, 0];
        assert_eq!(cpu_bfs(&row_ptr, &edges, 4, 0), vec![0, 1, 2, 3]);
    }
}
