//! `hotspot` — thermal simulation of a processor floorplan (Rodinia).
//!
//! Iterative stencil coupling the temperature grid with a static power
//! map: `t' = t + c_p * p + c_n * (neighbours - 4t)`, with clamped
//! boundaries. Ping-pong buffers over several time steps.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const STEPS: usize = 4;
const CP: f32 = 0.05;
const CN: f32 = 0.1;

/// See the [module docs](self).
#[derive(Debug)]
pub struct HotSpot {
    seed: u64,
    result: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl HotSpot {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            result: None,
            expected: Vec::new(),
        }
    }
}

fn cpu_step(t: &[f32], p: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    let at = |x: i32, y: i32| -> f32 {
        let xc = x.clamp(0, w as i32 - 1) as usize;
        let yc = y.clamp(0, h as i32 - 1) as usize;
        t[yc * w + xc]
    };
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let c = at(x, y);
            let neigh = at(x - 1, y) + at(x + 1, y) + at(x, y - 1) + at(x, y + 1);
            let idx = y as usize * w + x as usize;
            out[idx] = c + CP * p[idx] + CN * (neigh - 4.0 * c);
        }
    }
    out
}

impl Workload for HotSpot {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "hotspot",
            suite: Suite::Rodinia,
            description: "thermal stencil with power map and clamped boundaries",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let w = scale.pick(32, 64, 128) as u32;
        let h = w;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let temp: Vec<f32> = (0..w * h).map(|_| rng.gen_range(40.0..80.0)).collect();
        let power: Vec<f32> = (0..w * h).map(|_| rng.gen_range(0.0..5.0)).collect();
        let mut cur = temp.clone();
        for _ in 0..STEPS {
            cur = cpu_step(&cur, &power, w as usize, h as usize);
        }
        self.expected = cur;

        let ha = device.alloc_f32(&temp);
        let hb = device.alloc_f32(&temp);
        let hp = device.alloc_f32(&power);
        self.result = Some(if STEPS.is_multiple_of(2) { ha } else { hb });

        let mut b = KernelBuilder::new("hotspot_step");
        let psrc = b.param_u32("src");
        let pdst = b.param_u32("dst");
        let ppow = b.param_u32("power");
        let pw = b.param_u32("w");
        let ph = b.param_u32("h");
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let w_m1 = b.sub_u32(pw, Value::U32(1));
        let h_m1 = b.sub_u32(ph, Value::U32(1));
        // Clamped neighbour coordinates (min against borders; x-1 via
        // max(x,1)-1 to avoid wrap).
        let x_p1 = b.add_u32(x, Value::U32(1));
        let x_hi = b.min_u32(x_p1, w_m1);
        let x1 = b.max_u32(x, Value::U32(1));
        let x_lo = b.sub_u32(x1, Value::U32(1));
        let y_p1 = b.add_u32(y, Value::U32(1));
        let y_hi = b.min_u32(y_p1, h_m1);
        let y1 = b.max_u32(y, Value::U32(1));
        let y_lo = b.sub_u32(y1, Value::U32(1));

        let idx = b.mad_u32(y, pw, x);
        let ca = b.index(psrc, idx, 4);
        let c = b.ld_global_f32(ca);
        let li = b.mad_u32(y, pw, x_lo);
        let la = b.index(psrc, li, 4);
        let left = b.ld_global_f32(la);
        let ri = b.mad_u32(y, pw, x_hi);
        let ra = b.index(psrc, ri, 4);
        let right = b.ld_global_f32(ra);
        let ui = b.mad_u32(y_lo, pw, x);
        let ua = b.index(psrc, ui, 4);
        let up = b.ld_global_f32(ua);
        let di = b.mad_u32(y_hi, pw, x);
        let da = b.index(psrc, di, 4);
        let down = b.ld_global_f32(da);

        let pa = b.index(ppow, idx, 4);
        let pv = b.ld_global_f32(pa);
        let n1 = b.add_f32(left, right);
        let n2 = b.add_f32(n1, up);
        let neigh = b.add_f32(n2, down);
        let four_c = b.mul_f32(c, Value::F32(4.0));
        let lap = b.sub_f32(neigh, four_c);
        let t1 = b.mad_f32(pv, Value::F32(CP), c);
        let out = b.mad_f32(lap, Value::F32(CN), t1);
        let oa = b.index(pdst, idx, 4);
        b.st_global_f32(oa, out);
        let kernel = b.build()?;

        let grid = LaunchConfig::new_2d(w / 16, h / 16, 16, 16);
        let mut launches = Vec::new();
        for step in 0..STEPS {
            let (src, dst) = if step % 2 == 0 { (ha, hb) } else { (hb, ha) };
            launches.push(LaunchSpec {
                label: "hotspot_step".into(),
                kernel: kernel.clone(),
                config: grid,
                args: vec![src.arg(), dst.arg(), hp.arg(), Value::U32(w), Value::U32(h)],
            });
        }
        Ok(launches)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_f32(self.result.as_ref().expect("setup"));
        check_f32("hotspot", &got, &self.expected, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut HotSpot::new(22), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_step_conserves_uniform_field_without_power() {
        let t = vec![50.0f32; 16];
        let p = vec![0.0f32; 16];
        let out = cpu_step(&t, &p, 4, 4);
        for v in out {
            assert!((v - 50.0).abs() < 1e-6);
        }
    }
}
