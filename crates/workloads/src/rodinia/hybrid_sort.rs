//! `hybridsort` — bucket sort followed by per-bucket sorting (Rodinia).
//!
//! Three kernels mirroring the original's structure:
//!
//! 1. `bucket_count` — histogram the keys into buckets (global atomics);
//! 2. `bucket_scatter` — scatter keys to their bucket slot via an atomic
//!    cursor per bucket (maximally uncoalesced stores);
//! 3. `bucket_sort` — bitonic-sort each (padded) bucket in shared memory.
//!
//! The phases sit far apart in the divergence and coalescing subspaces,
//! which is exactly why the paper lists Hybrid Sort among the workloads
//! with large intra-workload variation.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BUCKETS: u32 = 16;
const BUCKET_CAP: u32 = 256; // power of two for the bitonic phase

/// See the [module docs](self).
#[derive(Debug)]
pub struct HybridSort {
    seed: u64,
    buckets: Option<BufferHandle>,
    n: usize,
    expected_sorted: Vec<u32>,
}

impl HybridSort {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            buckets: None,
            n: 0,
            expected_sorted: Vec::new(),
        }
    }
}

impl Workload for HybridSort {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "hybrid_sort",
            suite: Suite::Rodinia,
            description: "bucket scatter plus per-bucket bitonic sort (hybridsort)",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(512, 1024, 2048);
        self.n = n;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        // Keys in [0, BUCKETS * 2^16); bucket = key >> 16. Uniform keys keep
        // every bucket under BUCKET_CAP at these sizes.
        let keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..BUCKETS << 16)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        self.expected_sorted = sorted;

        let hkeys = device.alloc_u32(&keys);
        let hcounts = device.alloc_zeroed_u32(BUCKETS as usize);
        let hcursors = device.alloc_zeroed_u32(BUCKETS as usize);
        // Bucket storage padded with u32::MAX so the bitonic phase can sort
        // full power-of-two tiles.
        let hbuckets = device.alloc_u32(&vec![u32::MAX; (BUCKETS * BUCKET_CAP) as usize]);
        self.buckets = Some(hbuckets);

        // --- kernel 1: count ----------------------------------------------------
        let mut b = KernelBuilder::new("bucket_count");
        let pkeys = b.param_u32("keys");
        let pcounts = b.param_u32("counts");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let ka = b.index(pkeys, i, 4);
            let k = b.ld_global_u32(ka);
            let bucket = b.shr_u32(k, Value::U32(16));
            let ca = b.index(pcounts, bucket, 4);
            b.atomic_add_global_u32(ca, Value::U32(1));
        });
        let count = b.build()?;

        // --- kernel 2: scatter ----------------------------------------------------
        let mut b = KernelBuilder::new("bucket_scatter");
        let pkeys = b.param_u32("keys");
        let pcursors = b.param_u32("cursors");
        let pbuckets = b.param_u32("buckets");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let ka = b.index(pkeys, i, 4);
            let k = b.ld_global_u32(ka);
            let bucket = b.shr_u32(k, Value::U32(16));
            let ca = b.index(pcursors, bucket, 4);
            let slot = b.atomic_add_global_u32(ca, Value::U32(1));
            let base = b.mul_u32(bucket, Value::U32(BUCKET_CAP));
            let idx = b.add_u32(base, slot);
            let oa = b.index(pbuckets, idx, 4);
            b.st_global_u32(oa, k);
        });
        let scatter = b.build()?;

        // --- kernel 3: per-bucket bitonic sort -------------------------------------
        let mut b = KernelBuilder::new("bucket_sort");
        let pbuckets = b.param_u32("buckets");
        let smem = b.alloc_shared(BUCKET_CAP * 4);
        let tid = b.var_u32(b.tid_x());
        let gid = b.global_tid_x();
        let ga = b.index(pbuckets, gid, 4);
        let v = b.ld_global_u32(ga);
        let sa = b.index(smem, tid, 4);
        b.st_shared_u32(sa, v);
        b.barrier();
        let k = b.var_u32(Value::U32(2));
        b.while_(
            |b| b.le_u32(k, Value::U32(BUCKET_CAP)),
            |b| {
                let half_k = b.shr_u32(k, Value::U32(1));
                let j = b.var_u32(half_k);
                b.while_(
                    |b| b.gt_u32(j, Value::U32(0)),
                    |b| {
                        let ixj = b.xor_u32(tid, j);
                        let owner = b.gt_u32(ixj, tid);
                        b.if_(owner, |b| {
                            let ma = b.index(smem, tid, 4);
                            let mv = b.ld_shared_u32(ma);
                            let pa = b.index(smem, ixj, 4);
                            let pv = b.ld_shared_u32(pa);
                            let dir_bits = b.and_u32(tid, k);
                            let ascending = b.eq_u32(dir_bits, Value::U32(0));
                            let gt = b.gt_u32(mv, pv);
                            let lt = b.lt_u32(mv, pv);
                            let asc_swap = b.and_pred(ascending, gt);
                            let desc = b.not_pred(ascending);
                            let desc_swap = b.and_pred(desc, lt);
                            let swap = b.or_pred(asc_swap, desc_swap);
                            b.if_(swap, |b| {
                                b.st_shared_u32(ma, pv);
                                b.st_shared_u32(pa, mv);
                            });
                        });
                        b.barrier();
                        let nj = b.shr_u32(j, Value::U32(1));
                        b.assign(j, nj);
                    },
                );
                let nk = b.shl_u32(k, Value::U32(1));
                b.assign(k, nk);
            },
        );
        let res = b.ld_shared_u32(sa);
        b.st_global_u32(ga, res);
        let sort = b.build()?;

        Ok(vec![
            LaunchSpec {
                label: "bucket_count".into(),
                kernel: count,
                config: LaunchConfig::linear(n as u32, 256),
                args: vec![hkeys.arg(), hcounts.arg(), Value::U32(n as u32)],
            },
            LaunchSpec {
                label: "bucket_scatter".into(),
                kernel: scatter,
                config: LaunchConfig::linear(n as u32, 256),
                args: vec![
                    hkeys.arg(),
                    hcursors.arg(),
                    hbuckets.arg(),
                    Value::U32(n as u32),
                ],
            },
            LaunchSpec {
                label: "bucket_sort".into(),
                kernel: sort,
                config: LaunchConfig::new(BUCKETS, BUCKET_CAP),
                args: vec![hbuckets.arg()],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let raw = device.read_u32(self.buckets.as_ref().expect("setup"));
        // Concatenate buckets, dropping the MAX padding.
        let gathered: Vec<u32> = raw.into_iter().filter(|&k| k != u32::MAX).collect();
        if gathered.len() != self.n {
            return Err(VerifyError {
                detail: format!("expected {} keys, found {}", self.n, gathered.len()),
            });
        }
        if gathered != self.expected_sorted {
            let idx = gathered
                .iter()
                .zip(&self.expected_sorted)
                .position(|(g, w)| g != w)
                .unwrap_or(0);
            return Err(VerifyError {
                detail: format!(
                    "sorted[{idx}]: got {}, want {}",
                    gathered[idx], self.expected_sorted[idx]
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut HybridSort::new(27), Scale::Tiny).unwrap();
    }
}
