//! `kmeans` — one clustering iteration (Rodinia).
//!
//! Kernel 1 assigns every point to its nearest centroid (feature-major
//! centroid reads scatter across memory — the coalescing diversity the
//! paper attributes to K-Means); kernel 2 accumulates per-cluster feature
//! sums and counts with global atomics, from which new centroids follow.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{
    check_f32, check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta,
};

const K: u32 = 8;
const DIMS: u32 = 8;

/// See the [module docs](self).
#[derive(Debug)]
pub struct KMeansWorkload {
    seed: u64,
    assign: Option<BufferHandle>,
    counts: Option<BufferHandle>,
    expected_assign: Vec<u32>,
    expected_counts: Vec<u32>,
}

impl KMeansWorkload {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            assign: None,
            counts: None,
            expected_assign: Vec::new(),
            expected_counts: Vec::new(),
        }
    }
}

impl Workload for KMeansWorkload {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "kmeans",
            suite: Suite::Rodinia,
            description: "k-means assignment and centroid accumulation (scattered centroid reads)",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(256, 1024, 8192) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        // Points around K well-separated centers, point-major layout.
        let centers: Vec<Vec<f32>> = (0..K)
            .map(|c| (0..DIMS).map(|d| (c * 10 + d) as f32).collect())
            .collect();
        let mut points = vec![0.0f32; (n * DIMS) as usize];
        for p in 0..n as usize {
            let c = rng.gen_range(0..K as usize);
            for d in 0..DIMS as usize {
                points[p * DIMS as usize + d] = centers[c][d] + rng.gen_range(-0.5f32..0.5);
            }
        }
        // Initial centroids, feature-major: centroid[d * K + c].
        let mut centroids = vec![0.0f32; (K * DIMS) as usize];
        for c in 0..K as usize {
            for d in 0..DIMS as usize {
                centroids[d * K as usize + c] = centers[c][d];
            }
        }

        let mut expected_assign = vec![0u32; n as usize];
        let mut expected_counts = vec![0u32; K as usize];
        for p in 0..n as usize {
            let (mut best_c, mut best_d) = (0usize, f32::INFINITY);
            for c in 0..K as usize {
                let mut dist = 0.0f32;
                for d in 0..DIMS as usize {
                    let diff = points[p * DIMS as usize + d] - centroids[d * K as usize + c];
                    dist = diff.mul_add(diff, dist);
                }
                if dist < best_d {
                    best_d = dist;
                    best_c = c;
                }
            }
            expected_assign[p] = best_c as u32;
            expected_counts[best_c] += 1;
        }
        self.expected_assign = expected_assign;
        self.expected_counts = expected_counts;

        let hpoints = device.alloc_f32(&points);
        let hcentroids = device.alloc_f32(&centroids);
        let hassign = device.alloc_zeroed_u32(n as usize);
        let hsums = device.alloc_zeroed_f32((K * DIMS) as usize);
        let hcounts = device.alloc_zeroed_u32(K as usize);
        self.assign = Some(hassign);
        self.counts = Some(hcounts);

        // --- assignment kernel -------------------------------------------------
        let mut b = KernelBuilder::new("kmeans_assign");
        let pp = b.param_u32("points");
        let pc = b.param_u32("centroids");
        let pa = b.param_u32("assign");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let best_d = b.var_f32(Value::F32(f32::INFINITY));
            let best_c = b.var_u32(Value::U32(0));
            b.for_range_u32(Value::U32(0), Value::U32(K), 1, |b, c| {
                let dist = b.var_f32(Value::F32(0.0));
                b.for_range_u32(Value::U32(0), Value::U32(DIMS), 1, |b, d| {
                    let pidx = b.mad_u32(i, Value::U32(DIMS), d);
                    let paddr = b.index(pp, pidx, 4);
                    let pv = b.ld_global_f32(paddr);
                    let cidx = b.mad_u32(d, Value::U32(K), c);
                    let caddr = b.index(pc, cidx, 4);
                    let cv = b.ld_global_f32(caddr);
                    let diff = b.sub_f32(pv, cv);
                    let nd = b.mad_f32(diff, diff, dist);
                    b.assign(dist, nd);
                });
                let closer = b.lt_f32(dist, best_d);
                let nbd = b.sel_f32(closer, dist, best_d);
                let nbc = b.sel_u32(closer, c, best_c);
                b.assign(best_d, nbd);
                b.assign(best_c, nbc);
            });
            let aa = b.index(pa, i, 4);
            b.st_global_u32(aa, best_c);
        });
        let assign_kernel = b.build()?;

        // --- accumulation kernel ------------------------------------------------
        let mut b = KernelBuilder::new("kmeans_accumulate");
        let pp = b.param_u32("points");
        let pa = b.param_u32("assign");
        let psums = b.param_u32("sums");
        let pcounts = b.param_u32("counts");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let aa = b.index(pa, i, 4);
            let c = b.ld_global_u32(aa);
            let ca = b.index(pcounts, c, 4);
            b.atomic_add_global_u32(ca, Value::U32(1));
            b.for_range_u32(Value::U32(0), Value::U32(DIMS), 1, |b, d| {
                let pidx = b.mad_u32(i, Value::U32(DIMS), d);
                let paddr = b.index(pp, pidx, 4);
                let pv = b.ld_global_f32(paddr);
                let sidx = b.mad_u32(d, Value::U32(K), c);
                let saddr = b.index(psums, sidx, 4);
                b.atomic_add_global_f32(saddr, pv);
            });
        });
        let accum_kernel = b.build()?;

        Ok(vec![
            LaunchSpec {
                label: "kmeans_assign".into(),
                kernel: assign_kernel,
                config: LaunchConfig::linear(n, 128),
                args: vec![
                    hpoints.arg(),
                    hcentroids.arg(),
                    hassign.arg(),
                    Value::U32(n),
                ],
            },
            LaunchSpec {
                label: "kmeans_accumulate".into(),
                kernel: accum_kernel,
                config: LaunchConfig::linear(n, 128),
                args: vec![
                    hpoints.arg(),
                    hassign.arg(),
                    hsums.arg(),
                    hcounts.arg(),
                    Value::U32(n),
                ],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let assign = device.read_u32(self.assign.as_ref().expect("setup"));
        check_u32("assign", &assign, &self.expected_assign)?;
        let counts = device.read_u32(self.counts.as_ref().expect("setup"));
        let got: Vec<f32> = counts.iter().map(|&c| c as f32).collect();
        let want: Vec<f32> = self.expected_counts.iter().map(|&c| c as f32).collect();
        check_f32("counts", &got, &want, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut KMeansWorkload::new(19), Scale::Tiny).unwrap();
    }
}
