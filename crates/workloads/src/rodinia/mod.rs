//! Workloads from the Rodinia benchmark suite.

pub mod back_prop;
pub mod bfs;
pub mod hotspot;
pub mod hybrid_sort;
pub mod kmeans;
pub mod nearest_neighbor;
pub mod needleman_wunsch;
pub mod pathfinder;
pub mod srad;

pub use back_prop::BackProp;
pub use bfs::Bfs;
pub use hotspot::HotSpot;
pub use hybrid_sort::HybridSort;
pub use kmeans::KMeansWorkload;
pub use nearest_neighbor::NearestNeighbor;
pub use needleman_wunsch::NeedlemanWunsch;
pub use pathfinder::PathFinder;
pub use srad::Srad;
