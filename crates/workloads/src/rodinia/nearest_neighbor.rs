//! `nn` — nearest neighbor over hurricane records (Rodinia).
//!
//! Kernel 1 computes the Euclidean distance from every record to the
//! query point (short, memory-bound, fully coalesced — the original nn
//! kernel). Kernel 2 reduces to the global minimum with the
//! monotonic-bits `atomicMin` trick used on real GPUs for positive
//! floats.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// See the [module docs](self).
#[derive(Debug)]
pub struct NearestNeighbor {
    seed: u64,
    distances: Option<BufferHandle>,
    min_bits: Option<BufferHandle>,
    expected_distances: Vec<f32>,
    expected_min: f32,
}

impl NearestNeighbor {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            distances: None,
            min_bits: None,
            expected_distances: Vec::new(),
            expected_min: 0.0,
        }
    }
}

impl Workload for NearestNeighbor {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "nearest_neighbor",
            suite: Suite::Rodinia,
            description: "per-record Euclidean distance plus atomic-min reduction",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(512, 4096, 32768) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let lat: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..90.0)).collect();
        let lng: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..180.0)).collect();
        let (qlat, qlng) = (30.0f32, 90.0f32);
        self.expected_distances = lat
            .iter()
            .zip(&lng)
            .map(|(&la, &lo)| {
                let dla = la - qlat;
                let dlo = lo - qlng;
                // Mirror kernel rounding: mul then fused mad then sqrt.
                let t = dla * dla;
                dlo.mul_add(dlo, t).sqrt()
            })
            .collect();
        self.expected_min = self
            .expected_distances
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);

        let hlat = device.alloc_f32(&lat);
        let hlng = device.alloc_f32(&lng);
        let hdist = device.alloc_zeroed_f32(n as usize);
        let hmin = device.alloc_u32(&[f32::INFINITY.to_bits()]);
        self.distances = Some(hdist);
        self.min_bits = Some(hmin);

        // --- distance kernel --------------------------------------------------
        let mut b = KernelBuilder::new("nn_distance");
        let plat = b.param_u32("lat");
        let plng = b.param_u32("lng");
        let pdist = b.param_u32("dist");
        let pqlat = b.param_f32("qlat");
        let pqlng = b.param_f32("qlng");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let la = b.index(plat, i, 4);
            let lav = b.ld_global_f32(la);
            let lo = b.index(plng, i, 4);
            let lov = b.ld_global_f32(lo);
            let dla = b.sub_f32(lav, pqlat);
            let dlo = b.sub_f32(lov, pqlng);
            let t = b.mul_f32(dla, dla);
            let d2 = b.mad_f32(dlo, dlo, t);
            let d = b.sqrt_f32(d2);
            let da = b.index(pdist, i, 4);
            b.st_global_f32(da, d);
        });
        let dist_kernel = b.build()?;

        // --- atomic min over the float bit patterns ----------------------------
        let mut b = KernelBuilder::new("nn_reduce_min");
        let pdist = b.param_u32("dist");
        let pmin = b.param_u32("min_bits");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let da = b.index(pdist, i, 4);
            // Positive IEEE floats order identically to their bit patterns,
            // so reinterpret the load as u32 and use atomicMin.
            let bits = b.ld_global_u32(da);
            let ma = b.offset(pmin, 0);
            b.atomic_min_global_u32(ma, bits);
        });
        let min_kernel = b.build()?;

        Ok(vec![
            LaunchSpec {
                label: "nn_distance".into(),
                kernel: dist_kernel,
                config: LaunchConfig::linear(n, 256),
                args: vec![
                    hlat.arg(),
                    hlng.arg(),
                    hdist.arg(),
                    Value::F32(qlat),
                    Value::F32(qlng),
                    Value::U32(n),
                ],
            },
            LaunchSpec {
                label: "nn_reduce_min".into(),
                kernel: min_kernel,
                config: LaunchConfig::linear(n, 256),
                args: vec![hdist.arg(), hmin.arg(), Value::U32(n)],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let dist = device.read_f32(self.distances.as_ref().expect("setup"));
        check_f32("distances", &dist, &self.expected_distances, 1e-4)?;
        let bits = device.read_u32(self.min_bits.as_ref().expect("setup"))[0];
        let min = f32::from_bits(bits);
        check_f32("min", &[min], &[self.expected_min], 1e-5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut NearestNeighbor::new(20), Scale::Tiny).unwrap();
    }
}
