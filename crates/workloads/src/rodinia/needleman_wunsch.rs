//! `nw` — Needleman-Wunsch sequence alignment (Rodinia).
//!
//! The score matrix fills along anti-diagonals; each diagonal is one
//! kernel launch whose width grows then shrinks — a stream of small,
//! dependent launches whose occupancy keeps changing, plus the three-way
//! max recurrence per cell.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const GAP: i32 = -1;

/// See the [module docs](self).
#[derive(Debug)]
pub struct NeedlemanWunsch {
    seed: u64,
    score: Option<BufferHandle>,
    n: usize,
    expected: Vec<i32>,
}

impl NeedlemanWunsch {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            score: None,
            n: 0,
            expected: Vec::new(),
        }
    }
}

fn cpu_nw(a: &[i32], bseq: &[i32], n: usize) -> Vec<i32> {
    let dim = n + 1;
    let mut m = vec![0i32; dim * dim];
    for i in 0..dim {
        m[i * dim] = GAP * i as i32;
        m[i] = GAP * i as i32;
    }
    for i in 1..dim {
        for j in 1..dim {
            let sim = if a[i - 1] == bseq[j - 1] { 2 } else { -1 };
            m[i * dim + j] = (m[(i - 1) * dim + j - 1] + sim)
                .max(m[(i - 1) * dim + j] + GAP)
                .max(m[i * dim + j - 1] + GAP);
        }
    }
    m
}

impl Workload for NeedlemanWunsch {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "needleman_wunsch",
            suite: Suite::Rodinia,
            description: "sequence alignment via anti-diagonal wavefront launches",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(24, 48, 96);
        self.n = n;
        let dim = n + 1;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let a: Vec<i32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let bseq: Vec<i32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        self.expected = cpu_nw(&a, &bseq, n);

        // Initialize the score matrix borders on the host, as Rodinia does.
        let mut init = vec![0i32; dim * dim];
        for i in 0..dim {
            init[i * dim] = GAP * i as i32;
            init[i] = GAP * i as i32;
        }
        let hscore = device.alloc_i32(&init);
        let ha = device.alloc_i32(&a);
        let hb = device.alloc_i32(&bseq);
        self.score = Some(hscore);

        // Kernel: fill cells of one anti-diagonal `d` (cells (i, d - i) for
        // i in [lo, hi]).
        let mut b = KernelBuilder::new("nw_diagonal");
        let pscore = b.param_u32("score");
        let pa = b.param_u32("a");
        let pb = b.param_u32("b");
        let pdim = b.param_u32("dim");
        let pd = b.param_u32("d");
        let plo = b.param_u32("lo");
        let pcount = b.param_u32("count");
        let t = b.global_tid_x();
        let in_range = b.lt_u32(t, pcount);
        b.if_(in_range, |b| {
            let i = b.add_u32(plo, t);
            let j = b.sub_u32(pd, i);
            // sim = (a[i-1] == b[j-1]) ? 2 : -1
            let i_m1 = b.sub_u32(i, Value::U32(1));
            let j_m1 = b.sub_u32(j, Value::U32(1));
            let aa = b.index(pa, i_m1, 4);
            let av = b.ld_global_i32(aa);
            let ba = b.index(pb, j_m1, 4);
            let bv = b.ld_global_i32(ba);
            let same = b.eq_u32(av, bv);
            let sim = b.sel_i32(same, Value::I32(2), Value::I32(-1));
            // Neighbours.
            let row_m1 = b.mul_u32(i_m1, pdim);
            let diag_idx = b.add_u32(row_m1, j_m1);
            let da = b.index(pscore, diag_idx, 4);
            let diag = b.ld_global_i32(da);
            let up_idx = b.add_u32(row_m1, j);
            let ua = b.index(pscore, up_idx, 4);
            let up = b.ld_global_i32(ua);
            let row = b.mul_u32(i, pdim);
            let left_idx = b.add_u32(row, j_m1);
            let la = b.index(pscore, left_idx, 4);
            let left = b.ld_global_i32(la);
            let v1 = b.add_i32(diag, sim);
            let v2 = b.add_i32(up, Value::I32(GAP));
            let v3 = b.add_i32(left, Value::I32(GAP));
            let m1 = b.max_i32(v1, v2);
            let m = b.max_i32(m1, v3);
            let my_idx = b.add_u32(row, j);
            let ma = b.index(pscore, my_idx, 4);
            b.st_global_i32(ma, m);
        });
        let kernel = b.build()?;

        // One launch per anti-diagonal d = 2..=2n over interior cells
        // (1 <= i, j <= n).
        let mut launches = Vec::new();
        for d in 2..=2 * n {
            let lo = d.saturating_sub(n).max(1);
            let hi = (d - 1).min(n);
            if lo > hi {
                continue;
            }
            let count = (hi - lo + 1) as u32;
            launches.push(LaunchSpec {
                label: "nw_diagonal".into(),
                kernel: kernel.clone(),
                config: LaunchConfig::linear(count, 64),
                args: vec![
                    hscore.arg(),
                    ha.arg(),
                    hb.arg(),
                    Value::U32(dim as u32),
                    Value::U32(d as u32),
                    Value::U32(lo as u32),
                    Value::U32(count),
                ],
            });
        }
        Ok(launches)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_i32(self.score.as_ref().expect("setup"));
        if got != self.expected {
            let idx = got
                .iter()
                .zip(&self.expected)
                .position(|(g, w)| g != w)
                .unwrap_or(0);
            return Err(VerifyError {
                detail: format!(
                    "score[{idx}]: got {}, want {}",
                    got[idx], self.expected[idx]
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut NeedlemanWunsch::new(24), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_nw_identical_sequences_score_matches() {
        let a = vec![0, 1, 2, 3];
        let m = cpu_nw(&a, &a, 4);
        // Perfect alignment: 4 matches * 2.
        assert_eq!(m[4 * 5 + 4], 8);
    }
}
