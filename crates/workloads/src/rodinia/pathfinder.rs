//! `pathfinder` — dynamic-programming grid traversal (Rodinia).
//!
//! Row-by-row DP: `dst[x] = data[row][x] + min(src[x-1], src[x], src[x+1])`,
//! one kernel launch per row with ping-pong cost buffers. Near-neighbour
//! reads keep accesses well coalesced; the edge clamps diverge the first
//! and last warps.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// See the [module docs](self).
#[derive(Debug)]
pub struct PathFinder {
    seed: u64,
    result: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl PathFinder {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            result: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for PathFinder {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "pathfinder",
            suite: Suite::Rodinia,
            description: "row-wise dynamic programming with three-way min recurrence",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let cols = scale.pick(256, 1024, 4096);
        let rows = scale.pick(8, 16, 64);
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let data: Vec<u32> = (0..rows * cols).map(|_| rng.gen_range(0..10)).collect();

        // CPU reference.
        let mut cur: Vec<u32> = data[..cols].to_vec();
        for r in 1..rows {
            let mut next = vec![0u32; cols];
            for x in 0..cols {
                let lo = if x > 0 { cur[x - 1] } else { u32::MAX };
                let hi = if x + 1 < cols { cur[x + 1] } else { u32::MAX };
                next[x] = data[r * cols + x] + cur[x].min(lo).min(hi);
            }
            cur = next;
        }
        self.expected = cur;

        let hdata = device.alloc_u32(&data);
        let ha = device.alloc_u32(&data[..cols]);
        let hb = device.alloc_zeroed_u32(cols);
        // Rows - 1 DP steps: result lands in ha when steps is even.
        let steps = rows - 1;
        self.result = Some(if steps.is_multiple_of(2) { ha } else { hb });

        let mut b = KernelBuilder::new("pathfinder_row");
        let pdata = b.param_u32("data");
        let psrc = b.param_u32("src");
        let pdst = b.param_u32("dst");
        let pcols = b.param_u32("cols");
        let prow = b.param_u32("row");
        let x = b.global_tid_x();
        let in_range = b.lt_u32(x, pcols);
        b.if_(in_range, |b| {
            let ca = b.index(psrc, x, 4);
            let center = b.ld_global_u32(ca);
            let best = b.var_u32(center);
            let has_left = b.gt_u32(x, Value::U32(0));
            b.if_(has_left, |b| {
                let la = b.offset(ca.base, -4);
                let left = b.ld_global_u32(la);
                let m = b.min_u32(best, left);
                b.assign(best, m);
            });
            let x1 = b.add_u32(x, Value::U32(1));
            let has_right = b.lt_u32(x1, pcols);
            b.if_(has_right, |b| {
                let ra = b.offset(ca.base, 4);
                let right = b.ld_global_u32(ra);
                let m = b.min_u32(best, right);
                b.assign(best, m);
            });
            let didx = b.mad_u32(prow, pcols, x);
            let da = b.index(pdata, didx, 4);
            let dv = b.ld_global_u32(da);
            let sum = b.add_u32(dv, best);
            let oa = b.index(pdst, x, 4);
            b.st_global_u32(oa, sum);
        });
        let kernel = b.build()?;

        let cfg = LaunchConfig::linear(cols as u32, 256);
        let mut launches = Vec::new();
        for r in 1..rows {
            let step = r - 1;
            let (src, dst) = if step % 2 == 0 { (ha, hb) } else { (hb, ha) };
            launches.push(LaunchSpec {
                label: "pathfinder_row".into(),
                kernel: kernel.clone(),
                config: cfg,
                args: vec![
                    hdata.arg(),
                    src.arg(),
                    dst.arg(),
                    Value::U32(cols as u32),
                    Value::U32(r as u32),
                ],
            });
        }
        Ok(launches)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_u32(self.result.as_ref().expect("setup"));
        check_u32("pathfinder", &got, &self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut PathFinder::new(26), Scale::Tiny).unwrap();
    }
}
