//! `srad` — speckle-reducing anisotropic diffusion (Rodinia).
//!
//! Two kernels per iteration, as in the original: `srad1` computes the
//! local gradients and the diffusion coefficient (divisions, a `sqrt`-free
//! rational expression and clamping branches); `srad2` applies the
//! divergence update using the coefficients of the east/south neighbours.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const LAMBDA: f32 = 0.05;
const Q0_SQR: f32 = 0.05;

/// See the [module docs](self).
#[derive(Debug)]
pub struct Srad {
    seed: u64,
    image: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl Srad {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            image: None,
            expected: Vec::new(),
        }
    }
}

/// CPU reference for one SRAD iteration, mirroring the kernel arithmetic
/// (fused MAD use kept consistent where it affects tolerances).
fn cpu_iter(img: &[f32], w: usize, h: usize) -> Vec<f32> {
    let idx = |x: i32, y: i32| -> usize {
        let xc = x.clamp(0, w as i32 - 1) as usize;
        let yc = y.clamp(0, h as i32 - 1) as usize;
        yc * w + xc
    };
    let mut c = vec![0.0f32; w * h];
    let mut dn = vec![0.0f32; w * h];
    let mut ds = vec![0.0f32; w * h];
    let mut de = vec![0.0f32; w * h];
    let mut dw_ = vec![0.0f32; w * h];
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let i = idx(x, y);
            let jc = img[i];
            let n = img[idx(x, y - 1)] - jc;
            let s = img[idx(x, y + 1)] - jc;
            let e = img[idx(x + 1, y)] - jc;
            let wv = img[idx(x - 1, y)] - jc;
            dn[i] = n;
            ds[i] = s;
            de[i] = e;
            dw_[i] = wv;
            let g2 = (n * n + s * s + e * e + wv * wv) / (jc * jc);
            let l = (n + s + e + wv) / jc;
            let num = 0.5 * g2 - 0.0625 * (l * l);
            let den = 1.0 + 0.25 * l;
            let qsqr = num / (den * den);
            let coef = 1.0 / (1.0 + (qsqr - Q0_SQR) / (Q0_SQR * (1.0 + Q0_SQR)));
            c[i] = coef.clamp(0.0, 1.0);
        }
    }
    let mut out = img.to_vec();
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let i = idx(x, y);
            let c_c = c[i];
            let c_s = c[idx(x, y + 1)];
            let c_e = c[idx(x + 1, y)];
            let d = c_c * dn[i] + c_s * ds[i] + c_e * de[i] + c_c * dw_[i];
            out[i] = img[i] + 0.25 * LAMBDA * d;
        }
    }
    out
}

impl Workload for Srad {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "srad",
            suite: Suite::Rodinia,
            description:
                "speckle-reducing anisotropic diffusion; gradient/coefficient and update kernels",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let w = scale.pick(32, 64, 128) as u32;
        let h = w;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let img: Vec<f32> = (0..w * h).map(|_| rng.gen_range(0.5..2.0)).collect();
        self.expected = cpu_iter(&img, w as usize, h as usize);

        let himg = device.alloc_f32(&img);
        let hc = device.alloc_zeroed_f32((w * h) as usize);
        let hdn = device.alloc_zeroed_f32((w * h) as usize);
        let hds = device.alloc_zeroed_f32((w * h) as usize);
        let hde = device.alloc_zeroed_f32((w * h) as usize);
        let hdw = device.alloc_zeroed_f32((w * h) as usize);
        self.image = Some(himg);

        // --- srad1: gradients + coefficient -----------------------------------
        let mut b = KernelBuilder::new("srad1");
        let pimg = b.param_u32("img");
        let pc = b.param_u32("c");
        let pdn = b.param_u32("dn");
        let pds = b.param_u32("ds");
        let pde = b.param_u32("de");
        let pdw = b.param_u32("dw");
        let pw = b.param_u32("w");
        let ph = b.param_u32("h");
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let w_m1 = b.sub_u32(pw, Value::U32(1));
        let h_m1 = b.sub_u32(ph, Value::U32(1));
        let x_p1 = b.add_u32(x, Value::U32(1));
        let x_e = b.min_u32(x_p1, w_m1);
        let x1 = b.max_u32(x, Value::U32(1));
        let x_w = b.sub_u32(x1, Value::U32(1));
        let y_p1 = b.add_u32(y, Value::U32(1));
        let y_s = b.min_u32(y_p1, h_m1);
        let y1 = b.max_u32(y, Value::U32(1));
        let y_n = b.sub_u32(y1, Value::U32(1));

        let i = b.mad_u32(y, pw, x);
        let ca = b.index(pimg, i, 4);
        let jc = b.ld_global_f32(ca);
        let ni = b.mad_u32(y_n, pw, x);
        let na = b.index(pimg, ni, 4);
        let jn = b.ld_global_f32(na);
        let si = b.mad_u32(y_s, pw, x);
        let sa2 = b.index(pimg, si, 4);
        let js = b.ld_global_f32(sa2);
        let ei = b.mad_u32(y, pw, x_e);
        let ea = b.index(pimg, ei, 4);
        let je = b.ld_global_f32(ea);
        let wi = b.mad_u32(y, pw, x_w);
        let wa = b.index(pimg, wi, 4);
        let jw = b.ld_global_f32(wa);

        let n = b.sub_f32(jn, jc);
        let s = b.sub_f32(js, jc);
        let e = b.sub_f32(je, jc);
        let wv = b.sub_f32(jw, jc);
        for (buf, v) in [(pdn, n), (pds, s), (pde, e), (pdw, wv)] {
            let a = b.index(buf, i, 4);
            b.st_global_f32(a, v);
        }
        let n2 = b.mul_f32(n, n);
        let s2 = b.mad_f32(s, s, n2);
        let e2 = b.mad_f32(e, e, s2);
        let sum2 = b.mad_f32(wv, wv, e2);
        let jc2 = b.mul_f32(jc, jc);
        let g2 = b.div_f32(sum2, jc2);
        let l1 = b.add_f32(n, s);
        let l2 = b.add_f32(l1, e);
        let lsum = b.add_f32(l2, wv);
        let l = b.div_f32(lsum, jc);
        let half_g2 = b.mul_f32(g2, Value::F32(0.5));
        let l_sq = b.mul_f32(l, l);
        let num = b.mad_f32(l_sq, Value::F32(-0.0625), half_g2);
        let den = b.mad_f32(l, Value::F32(0.25), Value::F32(1.0));
        let den2 = b.mul_f32(den, den);
        let qsqr = b.div_f32(num, den2);
        let dq = b.sub_f32(qsqr, Value::F32(Q0_SQR));
        let scaled = b.mul_f32(dq, Value::F32(1.0 / (Q0_SQR * (1.0 + Q0_SQR))));
        let denom = b.add_f32(scaled, Value::F32(1.0));
        let coef = b.recip_f32(denom);
        let clamped_lo = b.max_f32(coef, Value::F32(0.0));
        let clamped = b.min_f32(clamped_lo, Value::F32(1.0));
        let oa = b.index(pc, i, 4);
        b.st_global_f32(oa, clamped);
        let srad1 = b.build()?;

        // --- srad2: divergence update ------------------------------------------
        let mut b = KernelBuilder::new("srad2");
        let pimg = b.param_u32("img");
        let pc = b.param_u32("c");
        let pdn = b.param_u32("dn");
        let pds = b.param_u32("ds");
        let pde = b.param_u32("de");
        let pdw = b.param_u32("dw");
        let pw = b.param_u32("w");
        let ph = b.param_u32("h");
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let w_m1 = b.sub_u32(pw, Value::U32(1));
        let h_m1 = b.sub_u32(ph, Value::U32(1));
        let x_p1 = b.add_u32(x, Value::U32(1));
        let x_e = b.min_u32(x_p1, w_m1);
        let y_p1 = b.add_u32(y, Value::U32(1));
        let y_s = b.min_u32(y_p1, h_m1);
        let i = b.mad_u32(y, pw, x);
        let cca = b.index(pc, i, 4);
        let c_c = b.ld_global_f32(cca);
        let sidx = b.mad_u32(y_s, pw, x);
        let csa = b.index(pc, sidx, 4);
        let c_s = b.ld_global_f32(csa);
        let eidx = b.mad_u32(y, pw, x_e);
        let cea = b.index(pc, eidx, 4);
        let c_e = b.ld_global_f32(cea);
        let dna = b.index(pdn, i, 4);
        let dnv = b.ld_global_f32(dna);
        let dsa = b.index(pds, i, 4);
        let dsv = b.ld_global_f32(dsa);
        let dea = b.index(pde, i, 4);
        let dev = b.ld_global_f32(dea);
        let dwa = b.index(pdw, i, 4);
        let dwv = b.ld_global_f32(dwa);
        let t1 = b.mul_f32(c_c, dnv);
        let t2 = b.mad_f32(c_s, dsv, t1);
        let t3 = b.mad_f32(c_e, dev, t2);
        let d = b.mad_f32(c_c, dwv, t3);
        let ia = b.index(pimg, i, 4);
        let cur = b.ld_global_f32(ia);
        let upd = b.mad_f32(d, Value::F32(0.25 * LAMBDA), cur);
        b.st_global_f32(ia, upd);
        let srad2 = b.build()?;

        let grid = LaunchConfig::new_2d(w / 16, h / 16, 16, 16);
        Ok(vec![
            LaunchSpec {
                label: "srad1".into(),
                kernel: srad1,
                config: grid,
                args: vec![
                    himg.arg(),
                    hc.arg(),
                    hdn.arg(),
                    hds.arg(),
                    hde.arg(),
                    hdw.arg(),
                    Value::U32(w),
                    Value::U32(h),
                ],
            },
            LaunchSpec {
                label: "srad2".into(),
                kernel: srad2,
                config: grid,
                args: vec![
                    himg.arg(),
                    hc.arg(),
                    hdn.arg(),
                    hds.arg(),
                    hde.arg(),
                    hdw.arg(),
                    Value::U32(w),
                    Value::U32(h),
                ],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_f32(self.image.as_ref().expect("setup"));
        check_f32("srad", &got, &self.expected, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Srad::new(23), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_iter_uniform_image_is_fixed_point() {
        let img = vec![1.0f32; 64];
        let out = cpu_iter(&img, 8, 8);
        for v in out {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }
}
