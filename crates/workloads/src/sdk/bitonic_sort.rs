//! `sortingNetworks` — shared-memory bitonic sort (CUDA SDK).
//!
//! Each block sorts a 256-key tile entirely in shared memory. The
//! compare-exchange network's direction test (`tid & k`) and the
//! partner-ownership guard diverge every warp at every stage, with a
//! barrier between stages — a dense mix of divergence, shared traffic and
//! synchronization.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const TILE: u32 = 256;

/// See the [module docs](self).
#[derive(Debug)]
pub struct BitonicSort {
    seed: u64,
    data: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl BitonicSort {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            data: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for BitonicSort {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "bitonic_sort",
            suite: Suite::CudaSdk,
            description: "per-block bitonic sorting network in shared memory",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let blocks = scale.pick(2, 16, 128) as u32;
        let n = blocks * TILE;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1 << 24)).collect();
        // Expected: each tile independently sorted ascending.
        let mut expected = data.clone();
        for chunk in expected.chunks_mut(TILE as usize) {
            chunk.sort_unstable();
        }
        self.expected = expected;

        let hdata = device.alloc_u32(&data);
        self.data = Some(hdata);

        let mut b = KernelBuilder::new("bitonic_sort");
        let pdata = b.param_u32("data");
        let smem = b.alloc_shared(TILE * 4);
        let tid = b.var_u32(b.tid_x());
        let gid = b.global_tid_x();
        let ga = b.index(pdata, gid, 4);
        let v = b.ld_global_u32(ga);
        let sa = b.index(smem, tid, 4);
        b.st_shared_u32(sa, v);
        b.barrier();

        // for (k = 2; k <= TILE; k <<= 1)
        //   for (j = k >> 1; j > 0; j >>= 1)
        let k = b.var_u32(Value::U32(2));
        b.while_(
            |b| b.le_u32(k, Value::U32(TILE)),
            |b| {
                let half_k = b.shr_u32(k, Value::U32(1));
                let j = b.var_u32(half_k);
                b.while_(
                    |b| b.gt_u32(j, Value::U32(0)),
                    |b| {
                        let ixj = b.xor_u32(tid, j);
                        let owner = b.gt_u32(ixj, tid);
                        b.if_(owner, |b| {
                            let ma = b.index(smem, tid, 4);
                            let mv = b.ld_shared_u32(ma);
                            let pa = b.index(smem, ixj, 4);
                            let pv = b.ld_shared_u32(pa);
                            let dir_bits = b.and_u32(tid, k);
                            let ascending = b.eq_u32(dir_bits, Value::U32(0));
                            let gt = b.gt_u32(mv, pv);
                            let lt = b.lt_u32(mv, pv);
                            let asc_swap = b.and_pred(ascending, gt);
                            let desc = b.not_pred(ascending);
                            let desc_swap = b.and_pred(desc, lt);
                            let swap = b.or_pred(asc_swap, desc_swap);
                            b.if_(swap, |b| {
                                b.st_shared_u32(ma, pv);
                                b.st_shared_u32(pa, mv);
                            });
                        });
                        b.barrier();
                        let nj = b.shr_u32(j, Value::U32(1));
                        b.assign(j, nj);
                    },
                );
                let nk = b.shl_u32(k, Value::U32(1));
                b.assign(k, nk);
            },
        );

        let res = b.ld_shared_u32(sa);
        b.st_global_u32(ga, res);
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "bitonic_sort".into(),
            kernel,
            config: LaunchConfig::new(blocks, TILE),
            args: vec![hdata.arg()],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_u32(self.data.as_ref().expect("setup"));
        check_u32("bitonic_sort", &got, &self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut BitonicSort::new(12), Scale::Tiny).unwrap();
    }
}
