//! `BlackScholes` — European option pricing (CUDA SDK).
//!
//! One thread per option; pure floating-point with heavy SFU use
//! (`log`, `exp`, `sqrt`, reciprocals) through the Abramowitz–Stegun
//! cumulative-normal polynomial. Fully coalesced, zero divergence apart
//! from the sign select — the compute-bound corner of the workload space.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::{Reg, Value};
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const RISK_FREE: f32 = 0.02;
const VOLATILITY: f32 = 0.30;
const LOG2_E: f32 = std::f32::consts::LOG2_E;

/// See the [module docs](self).
#[derive(Debug)]
pub struct BlackScholes {
    seed: u64,
    call: Option<BufferHandle>,
    put: Option<BufferHandle>,
    expected_call: Vec<f32>,
    expected_put: Vec<f32>,
}

impl BlackScholes {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            call: None,
            put: None,
            expected_call: Vec::new(),
            expected_put: Vec::new(),
        }
    }
}

/// CPU reference: cumulative normal distribution (A&S 26.2.17).
fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let cnd = (-0.5 * d * d).exp() * poly * 0.398_942_3;
    if d > 0.0 {
        1.0 - cnd
    } else {
        cnd
    }
}

fn reference(s: f32, x: f32, t: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 =
        ((s / x).ln() + (RISK_FREE + 0.5 * VOLATILITY * VOLATILITY) * t) / (VOLATILITY * sqrt_t);
    let d2 = d1 - VOLATILITY * sqrt_t;
    let exp_rt = (-RISK_FREE * t).exp();
    let call = s * cnd(d1) - x * exp_rt * cnd(d2);
    let put = x * exp_rt * (1.0 - cnd(d2)) - s * (1.0 - cnd(d1));
    (call, put)
}

impl Workload for BlackScholes {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "black_scholes",
            suite: Suite::CudaSdk,
            description: "European option pricing; SFU-heavy floating point, fully coalesced",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(1 << 9, 1 << 12, 1 << 15) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let price: Vec<f32> = (0..n).map(|_| rng.gen_range(5.0..30.0)).collect();
        let strike: Vec<f32> = (0..n).map(|_| rng.gen_range(1.0..100.0)).collect();
        let time: Vec<f32> = (0..n).map(|_| rng.gen_range(0.25..10.0)).collect();
        let (mut ec, mut ep) = (Vec::new(), Vec::new());
        for i in 0..n as usize {
            let (c, p) = reference(price[i], strike[i], time[i]);
            ec.push(c);
            ep.push(p);
        }
        self.expected_call = ec;
        self.expected_put = ep;

        let hs = device.alloc_f32(&price);
        let hx = device.alloc_f32(&strike);
        let ht = device.alloc_f32(&time);
        let hc = device.alloc_zeroed_f32(n as usize);
        let hp = device.alloc_zeroed_f32(n as usize);
        self.call = Some(hc);
        self.put = Some(hp);

        let mut b = KernelBuilder::new("black_scholes");
        let ps = b.param_u32("s");
        let px = b.param_u32("x");
        let pt = b.param_u32("t");
        let pcall = b.param_u32("call");
        let pput = b.param_u32("put");

        let i = b.global_tid_x();
        let sa = b.index(ps, i, 4);
        let s = b.ld_global_f32(sa);
        let xa = b.index(px, i, 4);
        let x = b.ld_global_f32(xa);
        let ta = b.index(pt, i, 4);
        let t = b.ld_global_f32(ta);

        let sqrt_t = b.sqrt_f32(t);
        // ln(s/x) = log2(s/x) / log2(e)
        let ratio = b.div_f32(s, x);
        let l2 = b.log2_f32(ratio);
        let ln_sx = b.div_f32(l2, Value::F32(LOG2_E));
        let drift = b.mul_f32(Value::F32(RISK_FREE + 0.5 * VOLATILITY * VOLATILITY), t);
        let num = b.add_f32(ln_sx, drift);
        let denom = b.mul_f32(Value::F32(VOLATILITY), sqrt_t);
        let d1 = b.div_f32(num, denom);
        let d2 = b.sub_f32(d1, denom);

        // exp(-r t) = exp2(-r t * log2(e))
        let rt = b.mul_f32(Value::F32(-RISK_FREE * LOG2_E), t);
        let exp_rt = b.exp2_f32(rt);

        // CND polynomial, emitted twice (once per d).
        let emit_cnd = |b: &mut KernelBuilder, d: Reg| -> Reg {
            let ad = b.abs_f32(d);
            let kd = b.mad_f32(Value::F32(0.231_641_9), ad, Value::F32(1.0));
            let k = b.recip_f32(kd);
            let p = b.mad_f32(Value::F32(1.330_274_5), k, Value::F32(-1.821_255_9));
            let p = b.mad_f32(p, k, Value::F32(1.781_477_9));
            let p = b.mad_f32(p, k, Value::F32(-0.356_563_78));
            let p = b.mad_f32(p, k, Value::F32(0.319_381_53));
            let poly = b.mul_f32(p, k);
            let dd = b.mul_f32(d, d);
            let e_arg = b.mul_f32(dd, Value::F32(-0.5 * LOG2_E));
            let e = b.exp2_f32(e_arg);
            let tail = b.mul_f32(e, poly);
            let cnd = b.mul_f32(tail, Value::F32(0.398_942_3));
            let pos = b.gt_f32(d, Value::F32(0.0));
            let flipped = b.sub_f32(Value::F32(1.0), cnd);
            b.sel_f32(pos, flipped, cnd)
        };
        let cnd1 = emit_cnd(&mut b, d1);
        let cnd2 = emit_cnd(&mut b, d2);

        let s_cnd1 = b.mul_f32(s, cnd1);
        let x_e = b.mul_f32(x, exp_rt);
        let x_e_cnd2 = b.mul_f32(x_e, cnd2);
        let call = b.sub_f32(s_cnd1, x_e_cnd2);
        let one_m_cnd2 = b.sub_f32(Value::F32(1.0), cnd2);
        let one_m_cnd1 = b.sub_f32(Value::F32(1.0), cnd1);
        let put_a = b.mul_f32(x_e, one_m_cnd2);
        let put_b = b.mul_f32(s, one_m_cnd1);
        let put = b.sub_f32(put_a, put_b);

        let ca = b.index(pcall, i, 4);
        b.st_global_f32(ca, call);
        let pa = b.index(pput, i, 4);
        b.st_global_f32(pa, put);
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "black_scholes".into(),
            kernel,
            config: LaunchConfig::linear(n, 128),
            args: vec![hs.arg(), hx.arg(), ht.arg(), hc.arg(), hp.arg()],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let call = device.read_f32(self.call.as_ref().expect("setup"));
        check_f32("call", &call, &self.expected_call, 2e-3)?;
        let put = device.read_f32(self.put.as_ref().expect("setup"));
        check_f32("put", &put, &self.expected_put, 2e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut BlackScholes::new(10), Scale::Tiny).unwrap();
    }

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-3);
        assert!(cnd(4.0) > 0.999);
        assert!(cnd(-4.0) < 0.001);
        assert!(cnd(1.0) > cnd(0.5));
    }
}
