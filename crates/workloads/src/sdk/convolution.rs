//! `convolutionSeparable` — separable 2-D convolution (CUDA SDK).
//!
//! Row and column passes with a radius-4 filter held in constant memory.
//! The row pass reads mostly within a warp's segment; the column pass
//! strides by the image width, giving the two kernels distinct coalescing
//! profiles — exactly the kind of intra-workload diversity the study looks
//! for.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const RADIUS: i32 = 4;

/// See the [module docs](self).
#[derive(Debug)]
pub struct ConvolutionSeparable {
    seed: u64,
    out: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl ConvolutionSeparable {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            out: None,
            expected: Vec::new(),
        }
    }
}

fn cpu_pass(input: &[f32], w: usize, h: usize, filter: &[f32], rows: bool) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (fi, &fv) in filter.iter().enumerate() {
                let off = fi as i32 - RADIUS;
                let (sx, sy) = if rows {
                    ((x as i32 + off).clamp(0, w as i32 - 1), y as i32)
                } else {
                    (x as i32, (y as i32 + off).clamp(0, h as i32 - 1))
                };
                acc += fv * input[sy as usize * w + sx as usize];
            }
            out[y * w + x] = acc;
        }
    }
    out
}

/// Builds one convolution pass kernel (`rows` or `cols`).
fn pass_kernel(name: &str, rows: bool) -> Result<gwc_simt::kernel::Kernel, SimtError> {
    let mut b = KernelBuilder::new(name);
    let pin = b.param_u32("in");
    let pout = b.param_u32("out");
    let pfilter = b.param_u32("filter"); // const memory
    let pw = b.param_u32("w");
    let ph = b.param_u32("h");
    let x = b.global_tid_x();
    let y = b.global_tid_y();

    let acc = b.var_f32(Value::F32(0.0));
    let w_minus1 = b.sub_u32(pw, Value::U32(1));
    let h_minus1 = b.sub_u32(ph, Value::U32(1));
    b.for_range_u32(
        Value::U32(0),
        Value::U32(2 * RADIUS as u32 + 1),
        1,
        |b, f| {
            // off = f - RADIUS, computed in i32 then clamped in u32 space by
            // min/max against the borders.
            let xi = b.to_i32(x);
            let yi = b.to_i32(y);
            let fi = b.to_i32(f);
            let off = b.add_i32(fi, Value::I32(-RADIUS));
            let (sx, sy) = if rows {
                let s = b.add_i32(xi, off);
                let clamped = b.max_i32(s, Value::I32(0));
                let sxu = b.to_u32(clamped);
                (b.min_u32(sxu, w_minus1), b.to_u32(yi))
            } else {
                let s = b.add_i32(yi, off);
                let clamped = b.max_i32(s, Value::I32(0));
                let syu = b.to_u32(clamped);
                (b.to_u32(xi), b.min_u32(syu, h_minus1))
            };
            let idx = b.mad_u32(sy, pw, sx);
            let ia = b.index(pin, idx, 4);
            let v = b.ld_global_f32(ia);
            let fa = b.index(pfilter, f, 4);
            let fv = b.ld_const_f32(fa);
            let next = b.mad_f32(v, fv, acc);
            b.assign(acc, next);
        },
    );
    let idx = b.mad_u32(y, pw, x);
    let oa = b.index(pout, idx, 4);
    b.st_global_f32(oa, acc);
    b.build()
}

impl Workload for ConvolutionSeparable {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "convolution_separable",
            suite: Suite::CudaSdk,
            description:
                "separable 2-D convolution; row and column passes with a const-memory filter",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let w = scale.pick(32, 64, 128) as u32;
        let h = w;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let input: Vec<f32> = (0..w * h).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let filter: Vec<f32> = (0..2 * RADIUS + 1)
            .map(|i| 1.0 / (1.0 + (i - RADIUS).abs() as f32))
            .collect();
        let tmp = cpu_pass(&input, w as usize, h as usize, &filter, true);
        self.expected = cpu_pass(&tmp, w as usize, h as usize, &filter, false);

        let hin = device.alloc_f32(&input);
        let htmp = device.alloc_zeroed_f32((w * h) as usize);
        let hout = device.alloc_zeroed_f32((w * h) as usize);
        let hfilter = device.alloc_const_f32(&filter);
        self.out = Some(hout);

        let rows = pass_kernel("convolution_rows", true)?;
        let cols = pass_kernel("convolution_cols", false)?;
        let grid = LaunchConfig::new_2d(w / 16, h / 16, 16, 16);
        Ok(vec![
            LaunchSpec {
                label: "convolution_rows".into(),
                kernel: rows,
                config: grid,
                args: vec![
                    hin.arg(),
                    htmp.arg(),
                    hfilter.arg(),
                    Value::U32(w),
                    Value::U32(h),
                ],
            },
            LaunchSpec {
                label: "convolution_cols".into(),
                kernel: cols,
                config: grid,
                args: vec![
                    htmp.arg(),
                    hout.arg(),
                    hfilter.arg(),
                    Value::U32(w),
                    Value::U32(h),
                ],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let out = device.read_f32(self.out.as_ref().expect("setup"));
        check_f32("convolution", &out, &self.expected, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut ConvolutionSeparable::new(11), Scale::Tiny).unwrap();
    }

    #[test]
    fn cpu_pass_identity_filter() {
        let mut filter = vec![0.0; 9];
        filter[RADIUS as usize] = 1.0;
        let img = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(cpu_pass(&img, 2, 2, &filter, true), img);
        assert_eq!(cpu_pass(&img, 2, 2, &filter, false), img);
    }
}
