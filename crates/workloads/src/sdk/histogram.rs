//! `histogram` — 64-bin histogram (CUDA SDK).
//!
//! Two kernels, matching the SDK's two strategies:
//!
//! * `histogram_global` — every thread atomically increments the global
//!   bin array directly (contended global atomics);
//! * `histogram_smem` — each block accumulates a private shared-memory
//!   histogram, then merges it into the global one (shared atomics plus a
//!   short merge phase).

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_u32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BINS: u32 = 64;
const BLOCK: u32 = 256;

/// See the [module docs](self).
#[derive(Debug)]
pub struct Histogram {
    seed: u64,
    bins_global: Option<BufferHandle>,
    bins_smem: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl Histogram {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            bins_global: None,
            bins_smem: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for Histogram {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "histogram",
            suite: Suite::CudaSdk,
            description:
                "64-bin histogram; direct global atomics and shared-memory privatized variants",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(1 << 10, 1 << 14, 1 << 17) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1 << 20)).collect();
        let mut expected = vec![0u32; BINS as usize];
        for &v in &data {
            expected[(v % BINS) as usize] += 1;
        }
        self.expected = expected;

        let hdata = device.alloc_u32(&data);
        let hg = device.alloc_zeroed_u32(BINS as usize);
        let hs = device.alloc_zeroed_u32(BINS as usize);
        self.bins_global = Some(hg);
        self.bins_smem = Some(hs);

        // --- direct global atomics ------------------------------------------
        let mut b = KernelBuilder::new("histogram_global");
        let pdata = b.param_u32("data");
        let pbins = b.param_u32("bins");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let da = b.index(pdata, i, 4);
            let v = b.ld_global_u32(da);
            let bin = b.rem_u32(v, Value::U32(BINS));
            let ba = b.index(pbins, bin, 4);
            b.atomic_add_global_u32(ba, Value::U32(1));
        });
        let global = b.build()?;

        // --- shared-memory privatized ----------------------------------------
        let mut b = KernelBuilder::new("histogram_smem");
        let pdata = b.param_u32("data");
        let pbins = b.param_u32("bins");
        let pn = b.param_u32("n");
        let sbins = b.alloc_shared(BINS * 4);
        let tid = b.var_u32(b.tid_x());
        // Zero the shared bins (BLOCK >= BINS; first BINS threads).
        let zeroer = b.lt_u32(tid, Value::U32(BINS));
        b.if_(zeroer, |b| {
            let sa = b.index(sbins, tid, 4);
            b.st_shared_u32(sa, Value::U32(0));
        });
        b.barrier();
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let da = b.index(pdata, i, 4);
            let v = b.ld_global_u32(da);
            let bin = b.rem_u32(v, Value::U32(BINS));
            let sa = b.index(sbins, bin, 4);
            b.atomic_add_shared_u32(sa, Value::U32(1));
        });
        b.barrier();
        b.if_(zeroer, |b| {
            let sa = b.index(sbins, tid, 4);
            let count = b.ld_shared_u32(sa);
            let has = b.gt_u32(count, Value::U32(0));
            b.if_(has, |b| {
                let ga = b.index(pbins, tid, 4);
                b.atomic_add_global_u32(ga, count);
            });
        });
        let smem = b.build()?;

        let cfg = LaunchConfig::linear(n, BLOCK);
        Ok(vec![
            LaunchSpec {
                label: "histogram_global".into(),
                kernel: global,
                config: cfg,
                args: vec![hdata.arg(), hg.arg(), Value::U32(n)],
            },
            LaunchSpec {
                label: "histogram_smem".into(),
                kernel: smem,
                config: cfg,
                args: vec![hdata.arg(), hs.arg(), Value::U32(n)],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let g = device.read_u32(self.bins_global.as_ref().expect("setup"));
        check_u32("histogram_global", &g, &self.expected)?;
        let s = device.read_u32(self.bins_smem.as_ref().expect("setup"));
        check_u32("histogram_smem", &s, &self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Histogram::new(8), Scale::Tiny).unwrap();
    }
}
