//! `matrixMul` — tiled dense matrix multiply (CUDA SDK).
//!
//! The classic 16×16 shared-memory tiling: each block computes one output
//! tile, streaming A and B tiles through shared memory with two barriers
//! per tile. Coalesced global traffic, heavy shared reuse, no divergence.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const TILE: u32 = 16;

/// See the [module docs](self).
#[derive(Debug)]
pub struct MatrixMul {
    seed: u64,
    out: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl MatrixMul {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            out: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for MatrixMul {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "matrix_mul",
            suite: Suite::CudaSdk,
            description: "16x16-tiled dense matrix multiply with shared-memory reuse",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(32, 64, 128) as u32; // square matrices n x n
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bm: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; (n * n) as usize];
        for i in 0..n as usize {
            for k in 0..n as usize {
                let av = a[i * n as usize + k];
                for j in 0..n as usize {
                    c[i * n as usize + j] += av * bm[k * n as usize + j];
                }
            }
        }
        self.expected = c;

        let ha = device.alloc_f32(&a);
        let hb = device.alloc_f32(&bm);
        let hc = device.alloc_zeroed_f32((n * n) as usize);
        self.out = Some(hc);

        let mut b = KernelBuilder::new("matrix_mul");
        let pa = b.param_u32("a");
        let pb = b.param_u32("b");
        let pc = b.param_u32("c");
        let pn = b.param_u32("n");
        let tile_a = b.alloc_shared(TILE * TILE * 4);
        let tile_b = b.alloc_shared(TILE * TILE * 4);

        let tx = b.var_u32(b.tid_x());
        let ty = b.var_u32(b.tid_y());
        let col = b.global_tid_x();
        let row = b.global_tid_y();
        let acc = b.var_f32(Value::F32(0.0));
        let n_tiles = b.div_u32(pn, Value::U32(TILE));

        b.for_range_u32(Value::U32(0), n_tiles, 1, |b, t| {
            // Load A[row, t*TILE + tx] and B[t*TILE + ty, col].
            let a_col = b.mad_u32(t, Value::U32(TILE), tx);
            let a_idx = b.mad_u32(row, pn, a_col);
            let aa = b.index(pa, a_idx, 4);
            let av = b.ld_global_f32(aa);
            let b_row = b.mad_u32(t, Value::U32(TILE), ty);
            let b_idx = b.mad_u32(b_row, pn, col);
            let ba = b.index(pb, b_idx, 4);
            let bv = b.ld_global_f32(ba);
            let sa_idx = b.mad_u32(ty, Value::U32(TILE), tx);
            let saa = b.index(tile_a, sa_idx, 4);
            b.st_shared_f32(saa, av);
            let sba = b.index(tile_b, sa_idx, 4);
            b.st_shared_f32(sba, bv);
            b.barrier();
            // Inner product over the tile.
            b.for_range_u32(Value::U32(0), Value::U32(TILE), 1, |b, k| {
                let ai = b.mad_u32(ty, Value::U32(TILE), k);
                let aa = b.index(tile_a, ai, 4);
                let av = b.ld_shared_f32(aa);
                let bi = b.mad_u32(k, Value::U32(TILE), tx);
                let ba = b.index(tile_b, bi, 4);
                let bv = b.ld_shared_f32(ba);
                let next = b.mad_f32(av, bv, acc);
                b.assign(acc, next);
            });
            b.barrier();
        });

        let c_idx = b.mad_u32(row, pn, col);
        let ca = b.index(pc, c_idx, 4);
        b.st_global_f32(ca, acc);
        let kernel = b.build()?;

        Ok(vec![LaunchSpec {
            label: "matrix_mul".into(),
            kernel,
            config: LaunchConfig::new_2d(n / TILE, n / TILE, TILE, TILE),
            args: vec![ha.arg(), hb.arg(), hc.arg(), Value::U32(n)],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let out = device.read_f32(self.out.as_ref().expect("setup"));
        check_f32("matrix_mul", &out, &self.expected, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut MatrixMul::new(6), Scale::Tiny).unwrap();
    }
}
