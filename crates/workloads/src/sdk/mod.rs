//! Workloads from the Nvidia CUDA SDK samples.

pub mod bitonic_sort;
pub mod black_scholes;
pub mod convolution;
pub mod histogram;
pub mod matrix_mul;
pub mod parallel_reduction;
pub mod scan;
pub mod transpose;
pub mod vector_add;

pub use bitonic_sort::BitonicSort;
pub use black_scholes::BlackScholes;
pub use convolution::ConvolutionSeparable;
pub use histogram::Histogram;
pub use matrix_mul::MatrixMul;
pub use parallel_reduction::ParallelReduction;
pub use scan::ScanLargeArrays;
pub use transpose::Transpose;
pub use vector_add::VectorAdd;
