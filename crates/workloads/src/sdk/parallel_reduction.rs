//! `reduction` — parallel sum reduction (CUDA SDK).
//!
//! Four kernel variants from the classic SDK sample (reduce0/reduce1,
//! reduce3, reduce6), deliberately kept together because the paper
//! highlights Parallel Reduction as a workload whose *kernels differ
//! strongly* from each other:
//!
//! * `reduce_interleaved` — the naive interleaved-addressing tree
//!   (`tid % (2*s) == 0`), which diverges the warp at every level;
//! * `reduce_sequential` — sequential addressing (`tid < s`), which keeps
//!   warps converged until the last few levels;
//! * `reduce_first_add` — half the blocks, two global loads per thread
//!   (first add during load) — double the memory intensity;
//! * `reduce_grid_stride` — a small fixed grid where each thread loops over
//!   the input with a grid-size stride — the load-dominated extreme.
//!
//! A final single-block `reduce_sequential` pass combines the per-block
//! partial sums.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BLOCK: u32 = 256;

/// Fixed grid size of the grid-stride variant.
const STRIDE_BLOCKS: u32 = 4;

/// See the [module docs](self).
#[derive(Debug)]
pub struct ParallelReduction {
    seed: u64,
    partial_inter: Option<BufferHandle>,
    partial_seq: Option<BufferHandle>,
    partial_first_add: Option<BufferHandle>,
    partial_stride: Option<BufferHandle>,
    total: Option<BufferHandle>,
    expected_partials: Vec<f32>,
    expected_first_add: Vec<f32>,
    expected_stride: Vec<f32>,
    expected_total: f32,
}

impl ParallelReduction {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            partial_inter: None,
            partial_seq: None,
            partial_first_add: None,
            partial_stride: None,
            total: None,
            expected_partials: Vec::new(),
            expected_first_add: Vec::new(),
            expected_stride: Vec::new(),
            expected_total: 0.0,
        }
    }
}

/// Builds a per-block tree reduction kernel.
///
/// `interleaved` selects the naive divergent addressing; otherwise
/// sequential addressing is used.
fn reduction_kernel(name: &str, interleaved: bool) -> Result<Kernel, SimtError> {
    let mut b = KernelBuilder::new(name);
    let input = b.param_u32("in");
    let output = b.param_u32("out");
    let n = b.param_u32("n");
    let smem = b.alloc_shared(BLOCK * 4);

    let tid = b.var_u32(b.tid_x());
    let gid = b.global_tid_x();
    // Load (0 when out of range) into shared memory.
    let in_range = b.lt_u32(gid, n);
    let ga = b.index(input, gid, 4);
    let loaded = b.var_f32(Value::F32(0.0));
    b.if_(in_range, |b| {
        let v = b.ld_global_f32(ga);
        b.assign(loaded, v);
    });
    let sa = b.index(smem, tid, 4);
    b.st_shared_f32(sa, loaded);
    b.barrier();

    if interleaved {
        // for (s = 1; s < BLOCK; s *= 2)
        //   if (tid % (2*s) == 0) smem[tid] += smem[tid + s]
        let s = b.var_u32(Value::U32(1));
        b.while_(
            |b| b.lt_u32(s, Value::U32(BLOCK)),
            |b| {
                let two_s = b.mul_u32(s, Value::U32(2));
                let m = b.rem_u32(tid, two_s);
                let is_owner = b.eq_u32(m, Value::U32(0));
                b.if_(is_owner, |b| {
                    let other = b.add_u32(tid, s);
                    let oa = b.index(smem, other, 4);
                    let ov = b.ld_shared_f32(oa);
                    let ma = b.index(smem, tid, 4);
                    let mv = b.ld_shared_f32(ma);
                    let sum = b.add_f32(mv, ov);
                    b.st_shared_f32(ma, sum);
                });
                b.barrier();
                b.assign(s, two_s);
            },
        );
    } else {
        // for (s = BLOCK/2; s > 0; s >>= 1)
        //   if (tid < s) smem[tid] += smem[tid + s]
        let s = b.var_u32(Value::U32(BLOCK / 2));
        b.while_(
            |b| b.gt_u32(s, Value::U32(0)),
            |b| {
                let active = b.lt_u32(tid, s);
                b.if_(active, |b| {
                    let other = b.add_u32(tid, s);
                    let oa = b.index(smem, other, 4);
                    let ov = b.ld_shared_f32(oa);
                    let ma = b.index(smem, tid, 4);
                    let mv = b.ld_shared_f32(ma);
                    let sum = b.add_f32(mv, ov);
                    b.st_shared_f32(ma, sum);
                });
                b.barrier();
                let half = b.shr_u32(s, Value::U32(1));
                b.assign(s, half);
            },
        );
    }

    let leader = b.eq_u32(tid, Value::U32(0));
    b.if_(leader, |b| {
        let r = b.index(smem, Value::U32(0), 4);
        let total = b.ld_shared_f32(r);
        let oa = b.index(output, b.ctaid_x(), 4);
        b.st_global_f32(oa, total);
    });
    b.build()
}

/// Emits the sequential-addressing shared-memory tree plus the leader
/// store, shared by the remaining variants. `loaded` holds each thread's
/// pre-accumulated value.
fn emit_tree_and_store(
    b: &mut KernelBuilder,
    smem: gwc_simt::instr::Operand,
    tid: gwc_simt::instr::Reg,
    loaded: gwc_simt::instr::Reg,
    output: gwc_simt::instr::Operand,
) {
    let sa = b.index(smem, tid, 4);
    b.st_shared_f32(sa, loaded);
    b.barrier();
    let s = b.var_u32(Value::U32(BLOCK / 2));
    b.while_(
        |b| b.gt_u32(s, Value::U32(0)),
        |b| {
            let active = b.lt_u32(tid, s);
            b.if_(active, |b| {
                let other = b.add_u32(tid, s);
                let oa = b.index(smem, other, 4);
                let ov = b.ld_shared_f32(oa);
                let ma = b.index(smem, tid, 4);
                let mv = b.ld_shared_f32(ma);
                let sum = b.add_f32(mv, ov);
                b.st_shared_f32(ma, sum);
            });
            b.barrier();
            let half = b.shr_u32(s, Value::U32(1));
            b.assign(s, half);
        },
    );
    let leader = b.eq_u32(tid, Value::U32(0));
    b.if_(leader, |b| {
        let r = b.index(smem, Value::U32(0), 4);
        let total = b.ld_shared_f32(r);
        let oa = b.index(output, b.ctaid_x(), 4);
        b.st_global_f32(oa, total);
    });
}

/// `reduce3`-style kernel: each thread loads and adds two elements
/// (`in[gid]` and `in[gid + span]`) before the shared tree.
fn first_add_kernel() -> Result<Kernel, SimtError> {
    let mut b = KernelBuilder::new("reduce_first_add");
    let input = b.param_u32("in");
    let output = b.param_u32("out");
    let span = b.param_u32("span");
    let smem = b.alloc_shared(BLOCK * 4);
    let tid = b.var_u32(b.tid_x());
    let gid = b.global_tid_x();
    let a0 = b.index(input, gid, 4);
    let v0 = b.ld_global_f32(a0);
    let hi_idx = b.add_u32(gid, span);
    let a1 = b.index(input, hi_idx, 4);
    let v1 = b.ld_global_f32(a1);
    let loaded = b.add_f32(v0, v1);
    emit_tree_and_store(&mut b, smem, tid, loaded, output);
    b.build()
}

/// `reduce6`-style kernel: a fixed small grid; each thread strides over
/// the whole input accumulating before the shared tree.
fn grid_stride_kernel() -> Result<Kernel, SimtError> {
    let mut b = KernelBuilder::new("reduce_grid_stride");
    let input = b.param_u32("in");
    let output = b.param_u32("out");
    let n = b.param_u32("n");
    let smem = b.alloc_shared(BLOCK * 4);
    let tid = b.var_u32(b.tid_x());
    let gid = b.global_tid_x();
    let stride = b.mul_u32(b.nctaid_x(), b.ntid_x());
    let acc = b.var_f32(Value::F32(0.0));
    let i = b.var_u32(gid);
    b.while_(
        |b| b.lt_u32(i, n),
        |b| {
            let a = b.index(input, i, 4);
            let v = b.ld_global_f32(a);
            let sum = b.add_f32(acc, v);
            b.assign(acc, sum);
            let next = b.add_u32(i, stride);
            b.assign(i, next);
        },
    );
    emit_tree_and_store(&mut b, smem, tid, acc, output);
    b.build()
}

impl Workload for ParallelReduction {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "parallel_reduction",
            suite: Suite::CudaSdk,
            description: "tree-based sum reduction; divergent and converged kernel variants",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let blocks = scale.pick(4, 32, 256) as u32;
        let n = blocks * BLOCK;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        // Small integers keep float sums exact.
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(0..8) as f32).collect();
        self.expected_partials = data
            .chunks(BLOCK as usize)
            .map(|c| c.iter().sum())
            .collect();
        self.expected_total = data.iter().sum();
        // First-add variant: half the blocks, each thread adds in[g] and
        // in[g + n/2].
        let half = (n / 2) as usize;
        self.expected_first_add = data[..half]
            .chunks(BLOCK as usize)
            .zip(data[half..].chunks(BLOCK as usize))
            .map(|(a, bb)| a.iter().sum::<f32>() + bb.iter().sum::<f32>())
            .collect();
        // Grid-stride variant: STRIDE_BLOCKS block sums over strided lanes.
        let stride_threads = (STRIDE_BLOCKS * BLOCK) as usize;
        self.expected_stride = (0..STRIDE_BLOCKS as usize)
            .map(|blk| {
                let mut sum = 0.0f32;
                for t in 0..BLOCK as usize {
                    let mut i = blk * BLOCK as usize + t;
                    while i < n as usize {
                        sum += data[i];
                        i += stride_threads;
                    }
                }
                sum
            })
            .collect();

        let hin = device.alloc_f32(&data);
        let hpi = device.alloc_zeroed_f32(blocks as usize);
        let hps = device.alloc_zeroed_f32(blocks as usize);
        let hpf = device.alloc_zeroed_f32((blocks / 2).max(1) as usize);
        let hpg = device.alloc_zeroed_f32(STRIDE_BLOCKS as usize);
        let htotal = device.alloc_zeroed_f32(1);
        self.partial_inter = Some(hpi);
        self.partial_seq = Some(hps);
        self.partial_first_add = Some(hpf);
        self.partial_stride = Some(hpg);
        self.total = Some(htotal);

        let inter = reduction_kernel("reduce_interleaved", true)?;
        let seq = reduction_kernel("reduce_sequential", false)?;
        let first_add = first_add_kernel()?;
        let grid_stride = grid_stride_kernel()?;

        let mut launches = vec![
            LaunchSpec {
                label: "reduce_interleaved".into(),
                kernel: inter,
                config: LaunchConfig::new(blocks, BLOCK),
                args: vec![hin.arg(), hpi.arg(), Value::U32(n)],
            },
            LaunchSpec {
                label: "reduce_sequential".into(),
                kernel: seq.clone(),
                config: LaunchConfig::new(blocks, BLOCK),
                args: vec![hin.arg(), hps.arg(), Value::U32(n)],
            },
            LaunchSpec {
                label: "reduce_first_add".into(),
                kernel: first_add,
                config: LaunchConfig::new((blocks / 2).max(1), BLOCK),
                args: vec![hin.arg(), hpf.arg(), Value::U32(n / 2)],
            },
            LaunchSpec {
                label: "reduce_grid_stride".into(),
                kernel: grid_stride,
                config: LaunchConfig::new(STRIDE_BLOCKS, BLOCK),
                args: vec![hin.arg(), hpg.arg(), Value::U32(n)],
            },
        ];
        // Final pass reduces the partials buffer directly (blocks <= BLOCK
        // always holds here; out-of-range threads load zero).
        launches.push(LaunchSpec {
            label: "reduce_sequential".into(),
            kernel: seq,
            config: LaunchConfig::new(1, BLOCK),
            args: vec![hps.arg(), htotal.arg(), Value::U32(blocks)],
        });
        Ok(launches)
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let pi = device.read_f32(self.partial_inter.as_ref().expect("setup"));
        check_f32("interleaved partials", &pi, &self.expected_partials, 1e-5)?;
        let ps = device.read_f32(self.partial_seq.as_ref().expect("setup"));
        check_f32("sequential partials", &ps, &self.expected_partials, 1e-5)?;
        let pf = device.read_f32(self.partial_first_add.as_ref().expect("setup"));
        check_f32("first-add partials", &pf, &self.expected_first_add, 1e-4)?;
        let pg = device.read_f32(self.partial_stride.as_ref().expect("setup"));
        check_f32("grid-stride partials", &pg, &self.expected_stride, 1e-4)?;
        let total = device.read_f32(self.total.as_ref().expect("setup"));
        check_f32("total", &total, &[self.expected_total], 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut ParallelReduction::new(2), Scale::Tiny).unwrap();
    }

    #[test]
    fn verifies_at_small_scale() {
        run_workload(&mut ParallelReduction::new(3), Scale::Small).unwrap();
    }
}
