//! `scanLargeArrays` — exclusive prefix sum over a large array (CUDA SDK).
//!
//! Three kernels, exactly as the SDK structures it:
//!
//! 1. `scan_block` — each block scans its 256-element tile in shared
//!    memory (Hillis–Steele), writes the exclusive scan and its block sum;
//! 2. `scan_top` — one block scans the array of block sums;
//! 3. `uniform_add` — adds each block's scanned offset to its tile.
//!
//! The phases have very different profiles (branchy shared-memory tree vs.
//! pure streaming), which is why the paper calls Scan of Large Arrays out
//! as diverse in both the divergence and coalescing subspaces.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const BLOCK: u32 = 256;

/// See the [module docs](self).
#[derive(Debug)]
pub struct ScanLargeArrays {
    seed: u64,
    out: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl ScanLargeArrays {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            out: None,
            expected: Vec::new(),
        }
    }
}

/// Per-block exclusive scan with Hillis–Steele double buffering in shared
/// memory; writes the tile scan and the tile total.
fn scan_block_kernel() -> Result<Kernel, SimtError> {
    let mut b = KernelBuilder::new("scan_block");
    let input = b.param_u32("in");
    let output = b.param_u32("out");
    let sums = b.param_u32("sums");
    // Double buffer: 2 × BLOCK floats.
    let smem = b.alloc_shared(2 * BLOCK * 4);

    let tid = b.var_u32(b.tid_x());
    let gid = b.global_tid_x();
    let ga = b.index(input, gid, 4);
    let v = b.ld_global_f32(ga);
    // ping = 0, pong = BLOCK*4.
    let ping = b.var_u32(Value::U32(0));
    let pong = b.var_u32(Value::U32(BLOCK * 4));
    let base_in = b.add_u32(ping, smem);
    let sa = b.index(base_in, tid, 4);
    b.st_shared_f32(sa, v);
    b.barrier();

    // Hillis–Steele inclusive scan: for (off = 1; off < BLOCK; off <<= 1)
    let off = b.var_u32(Value::U32(1));
    b.while_(
        |b| b.lt_u32(off, Value::U32(BLOCK)),
        |b| {
            let src_base = b.add_u32(ping, smem);
            let dst_base = b.add_u32(pong, smem);
            let my_src = b.index(src_base, tid, 4);
            let mine = b.ld_shared_f32(my_src);
            let has_left = b.ge_u32(tid, off);
            let total = b.var_f32(mine);
            b.if_(has_left, |b| {
                let left_idx = b.sub_u32(tid, off);
                let la = b.index(src_base, left_idx, 4);
                let lv = b.ld_shared_f32(la);
                let s = b.add_f32(mine, lv);
                b.assign(total, s);
            });
            let my_dst = b.index(dst_base, tid, 4);
            b.st_shared_f32(my_dst, total);
            b.barrier();
            // Swap buffers.
            let tmp = b.var_u32(ping);
            b.assign(ping, pong);
            b.assign(pong, tmp);
            let next = b.shl_u32(off, Value::U32(1));
            b.assign(off, next);
        },
    );

    // Convert inclusive -> exclusive on write: out[gid] = inclusive - v.
    let res_base = b.add_u32(ping, smem);
    let ra = b.index(res_base, tid, 4);
    let inclusive = b.ld_shared_f32(ra);
    let exclusive = b.sub_f32(inclusive, v);
    let oa = b.index(output, gid, 4);
    b.st_global_f32(oa, exclusive);
    // Last thread writes the block total.
    let last = b.eq_u32(tid, Value::U32(BLOCK - 1));
    b.if_(last, |b| {
        let sa = b.index(sums, b.ctaid_x(), 4);
        b.st_global_f32(sa, inclusive);
    });
    b.build()
}

/// Adds `offsets[blockIdx]` to every element of the block's tile.
fn uniform_add_kernel() -> Result<Kernel, SimtError> {
    let mut b = KernelBuilder::new("uniform_add");
    let data = b.param_u32("data");
    let offsets = b.param_u32("offsets");
    let gid = b.global_tid_x();
    let oa = b.index(offsets, b.ctaid_x(), 4);
    let off = b.ld_global_f32(oa);
    let da = b.index(data, gid, 4);
    let v = b.ld_global_f32(da);
    let nv = b.add_f32(v, off);
    b.st_global_f32(da, nv);
    b.build()
}

impl Workload for ScanLargeArrays {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "scan_large_arrays",
            suite: Suite::CudaSdk,
            description: "multi-phase exclusive prefix sum (block scan, top scan, uniform add)",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let blocks = scale.pick(4, 32, 256) as u32;
        let n = blocks * BLOCK;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(0..4) as f32).collect();
        let mut acc = 0.0;
        self.expected = data
            .iter()
            .map(|&v| {
                let e = acc;
                acc += v;
                e
            })
            .collect();

        let hin = device.alloc_f32(&data);
        let hout = device.alloc_zeroed_f32(n as usize);
        let hsums = device.alloc_zeroed_f32(BLOCK as usize); // padded to BLOCK
        let hsums_scanned = device.alloc_zeroed_f32(BLOCK as usize);
        let htop = device.alloc_zeroed_f32(1);
        self.out = Some(hout);

        let scan = scan_block_kernel()?;
        let add = uniform_add_kernel()?;

        Ok(vec![
            LaunchSpec {
                label: "scan_block".into(),
                kernel: scan.clone(),
                config: LaunchConfig::new(blocks, BLOCK),
                args: vec![hin.arg(), hout.arg(), hsums.arg()],
            },
            // Top-level scan of the (padded) block sums in a single block.
            LaunchSpec {
                label: "scan_top".into(),
                kernel: scan,
                config: LaunchConfig::new(1, BLOCK),
                args: vec![hsums.arg(), hsums_scanned.arg(), htop.arg()],
            },
            LaunchSpec {
                label: "uniform_add".into(),
                kernel: add,
                config: LaunchConfig::new(blocks, BLOCK),
                args: vec![hout.arg(), hsums_scanned.arg()],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let out = device.read_f32(self.out.as_ref().expect("setup"));
        check_f32("scan", &out, &self.expected, 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut ScanLargeArrays::new(4), Scale::Tiny).unwrap();
    }

    #[test]
    fn verifies_at_small_scale() {
        run_workload(&mut ScanLargeArrays::new(5), Scale::Small).unwrap();
    }
}
