//! `transpose` — matrix transpose, naive and tiled (CUDA SDK).
//!
//! The two kernels bracket the coalescing spectrum: the naive version
//! reads coalesced but writes with a large stride (one segment per lane);
//! the tiled version stages a 16×16 tile through shared memory (padded to
//! 17 columns to dodge bank conflicts) so both global accesses coalesce.

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

const TILE: u32 = 16;

/// See the [module docs](self).
#[derive(Debug)]
pub struct Transpose {
    seed: u64,
    out_naive: Option<BufferHandle>,
    out_tiled: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl Transpose {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            out_naive: None,
            out_tiled: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for Transpose {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "transpose",
            suite: Suite::CudaSdk,
            description: "matrix transpose; naive (uncoalesced store) and shared-tile variants",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(32, 64, 128) as u32;
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let input: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-9.0..9.0)).collect();
        let mut t = vec![0.0f32; (n * n) as usize];
        for y in 0..n as usize {
            for x in 0..n as usize {
                t[x * n as usize + y] = input[y * n as usize + x];
            }
        }
        self.expected = t;

        let hin = device.alloc_f32(&input);
        let hnaive = device.alloc_zeroed_f32((n * n) as usize);
        let htiled = device.alloc_zeroed_f32((n * n) as usize);
        self.out_naive = Some(hnaive);
        self.out_tiled = Some(htiled);

        // --- naive: out[x * n + y] = in[y * n + x] ---------------------------
        let mut b = KernelBuilder::new("transpose_naive");
        let pin = b.param_u32("in");
        let pout = b.param_u32("out");
        let pn = b.param_u32("n");
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let src = b.mad_u32(y, pn, x);
        let sa = b.index(pin, src, 4);
        let v = b.ld_global_f32(sa);
        let dst = b.mad_u32(x, pn, y);
        let da = b.index(pout, dst, 4);
        b.st_global_f32(da, v);
        let naive = b.build()?;

        // --- tiled through padded shared memory ------------------------------
        let mut b = KernelBuilder::new("transpose_tiled");
        let pin = b.param_u32("in");
        let pout = b.param_u32("out");
        let pn = b.param_u32("n");
        let tile = b.alloc_shared(TILE * (TILE + 1) * 4);
        let tx = b.var_u32(b.tid_x());
        let ty = b.var_u32(b.tid_y());
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let src = b.mad_u32(y, pn, x);
        let saddr = b.index(pin, src, 4);
        let v = b.ld_global_f32(saddr);
        let t_idx = b.mad_u32(ty, Value::U32(TILE + 1), tx);
        let ta = b.index(tile, t_idx, 4);
        b.st_shared_f32(ta, v);
        b.barrier();
        // Write transposed: out[(bx*TILE + ty) * n + (by*TILE + tx)], reading
        // tile[tx][ty].
        let bx_base = b.mul_u32(b.ctaid_x(), Value::U32(TILE));
        let by_base = b.mul_u32(b.ctaid_y(), Value::U32(TILE));
        let out_row = b.add_u32(bx_base, ty);
        let out_col = b.add_u32(by_base, tx);
        let dst = b.mad_u32(out_row, pn, out_col);
        let r_idx = b.mad_u32(tx, Value::U32(TILE + 1), ty);
        let ra = b.index(tile, r_idx, 4);
        let tv = b.ld_shared_f32(ra);
        let da = b.index(pout, dst, 4);
        b.st_global_f32(da, tv);
        let tiled = b.build()?;

        let grid = LaunchConfig::new_2d(n / TILE, n / TILE, TILE, TILE);
        Ok(vec![
            LaunchSpec {
                label: "transpose_naive".into(),
                kernel: naive,
                config: grid,
                args: vec![hin.arg(), hnaive.arg(), Value::U32(n)],
            },
            LaunchSpec {
                label: "transpose_tiled".into(),
                kernel: tiled,
                config: grid,
                args: vec![hin.arg(), htiled.arg(), Value::U32(n)],
            },
        ])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let naive = device.read_f32(self.out_naive.as_ref().expect("setup"));
        check_f32("transpose_naive", &naive, &self.expected, 1e-6)?;
        let tiled = device.read_f32(self.out_tiled.as_ref().expect("setup"));
        check_f32("transpose_tiled", &tiled, &self.expected, 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut Transpose::new(7), Scale::Tiny).unwrap();
    }
}
