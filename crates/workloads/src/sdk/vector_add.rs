//! `vectorAdd` — the canonical streaming kernel (quickstart workload).
//!
//! Fully coalesced, no divergence beyond the bounds guard, no reuse: the
//! "origin" of the characteristic space that other workloads diverge from.
//! Excluded from suite-diversity statistics (it is our quickstart
//! addition, not part of the paper's population).

use crate::rng::SeededRng;
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::{BufferHandle, Device};
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

use crate::workload::{check_f32, LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// See the [module docs](self).
#[derive(Debug)]
pub struct VectorAdd {
    seed: u64,
    out: Option<BufferHandle>,
    expected: Vec<f32>,
}

impl VectorAdd {
    /// Creates the workload with a reproducible input seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            out: None,
            expected: Vec::new(),
        }
    }
}

impl Workload for VectorAdd {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "vector_add",
            suite: Suite::CudaSdk,
            description: "element-wise vector addition (streaming, coalesced)",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(1 << 10, 1 << 14, 1 << 17);
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        self.expected = a.iter().zip(&b).map(|(x, y)| x + y).collect();

        let ha = device.alloc_f32(&a);
        let hb = device.alloc_f32(&b);
        let hout = device.alloc_zeroed_f32(n);
        self.out = Some(hout);

        let mut kb = KernelBuilder::new("vec_add");
        let pa = kb.param_u32("a");
        let pb = kb.param_u32("b");
        let pout = kb.param_u32("out");
        let pn = kb.param_u32("n");
        let i = kb.global_tid_x();
        let in_range = kb.lt_u32(i, pn);
        kb.if_(in_range, |kb| {
            let aa = kb.index(pa, i, 4);
            let x = kb.ld_global_f32(aa);
            let ab = kb.index(pb, i, 4);
            let y = kb.ld_global_f32(ab);
            let s = kb.add_f32(x, y);
            let ao = kb.index(pout, i, 4);
            kb.st_global_f32(ao, s);
        });
        let kernel = kb.build()?;

        Ok(vec![LaunchSpec {
            label: "vec_add".into(),
            kernel,
            config: LaunchConfig::linear(n as u32, 256),
            args: vec![ha.arg(), hb.arg(), hout.arg(), Value::U32(n as u32)],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let out = device.read_f32(self.out.as_ref().expect("setup ran"));
        check_f32("vec_add", &out, &self.expected, 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;

    #[test]
    fn verifies_at_tiny_scale() {
        run_workload(&mut VectorAdd::new(1), Scale::Tiny).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = VectorAdd::new(9);
        let mut b = VectorAdd::new(9);
        run_workload(&mut a, Scale::Tiny).unwrap();
        run_workload(&mut b, Scale::Tiny).unwrap();
        assert_eq!(a.expected, b.expected);
    }
}
