//! The workload abstraction: setup, launches, verification.

use std::error::Error;
use std::fmt;

use gwc_simt::exec::Device;
use gwc_simt::instr::Value;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::SimtError;

/// Benchmark suite a workload belongs to (as attributed in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Nvidia CUDA SDK samples.
    CudaSdk,
    /// Parboil benchmark suite.
    Parboil,
    /// Rodinia benchmark suite.
    Rodinia,
    /// Stand-alone workloads (MUMmerGPU, Similarity Score).
    Other,
}

impl Suite {
    /// Short lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::CudaSdk => "cuda_sdk",
            Suite::Parboil => "parboil",
            Suite::Rodinia => "rodinia",
            Suite::Other => "other",
        }
    }

    /// All suites.
    pub const ALL: [Suite; 4] = [Suite::CudaSdk, Suite::Parboil, Suite::Rodinia, Suite::Other];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem scale. Characterization runs use [`Scale::Full`]; unit tests
/// use [`Scale::Tiny`] so the whole suite verifies in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Smallest size that still exercises every kernel phase.
    Tiny,
    /// A few hundred thousand thread-instructions.
    Small,
    /// The size used for the characterization study.
    Full,
}

impl Scale {
    /// Picks one of three values by scale.
    pub fn pick(&self, tiny: usize, small: usize, full: usize) -> usize {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Size tier of the whole study *population* (orthogonal to [`Scale`],
/// which sizes each workload's inputs). [`StudyScale::Standard`] is the
/// 26-workload registry every committed result was produced from;
/// [`StudyScale::Large`] replicates the registry with parameter-swept
/// input seeds and scales into hundreds of kernel instances, for
/// stressing observer memory and cache throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StudyScale {
    /// The canonical 26-workload population.
    #[default]
    Standard,
    /// The canonical population plus replicated, parameter-swept
    /// instances of every workload (hundreds of kernel instances).
    Large,
}

impl StudyScale {
    /// Short lower-case name (the `--scale` CLI value).
    pub fn name(self) -> &'static str {
        match self {
            StudyScale::Standard => "standard",
            StudyScale::Large => "large",
        }
    }

    /// Parses a `--scale` CLI value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "standard" => Some(StudyScale::Standard),
            "large" => Some(StudyScale::Large),
            _ => None,
        }
    }
}

impl fmt::Display for StudyScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMeta {
    /// Stable snake_case name.
    pub name: &'static str,
    /// Suite attribution.
    pub suite: Suite,
    /// One-line description of the algorithm.
    pub description: &'static str,
}

/// One kernel launch within a workload run.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Kernel-instance label; launches sharing a label are profiled as one
    /// kernel (e.g. repeated wavefront launches of the same kernel).
    pub label: String,
    /// The kernel to run.
    pub kernel: Kernel,
    /// Launch geometry.
    pub config: LaunchConfig,
    /// Kernel arguments.
    pub args: Vec<Value>,
}

/// A workload's GPU results disagreed with its CPU reference.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed: {}", self.detail)
    }
}

impl Error for VerifyError {}

/// Any error from running a workload.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The simulator rejected or aborted a launch.
    Simt(SimtError),
    /// GPU/CPU mismatch.
    Verify(VerifyError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Simt(e) => write!(f, "simulation error: {e}"),
            WorkloadError::Verify(e) => e.fmt(f),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Simt(e) => Some(e),
            WorkloadError::Verify(e) => Some(e),
        }
    }
}

impl From<SimtError> for WorkloadError {
    fn from(e: SimtError) -> Self {
        WorkloadError::Simt(e)
    }
}

impl From<VerifyError> for WorkloadError {
    fn from(e: VerifyError) -> Self {
        WorkloadError::Verify(e)
    }
}

/// A benchmark workload: allocates inputs, plans kernel launches, and
/// verifies device results against a CPU reference.
///
/// The flow is `setup → (execute the returned launches in order) →
/// verify`. Implementations stash buffer handles and expected outputs in
/// `&mut self` during `setup`.
///
/// `Send` is a supertrait so a study can fan whole workloads out across
/// worker threads (each workload still runs on exactly one thread).
pub trait Workload: Send {
    /// Static metadata.
    fn meta(&self) -> WorkloadMeta;

    /// Allocates device buffers, builds kernels and returns the launch
    /// sequence for one run at the given scale.
    ///
    /// # Errors
    ///
    /// Returns a [`SimtError`] if kernel construction fails.
    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError>;

    /// Checks device results against the CPU reference computed during
    /// [`Workload::setup`].
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] describing the first mismatch.
    fn verify(&self, device: &Device) -> Result<(), VerifyError>;
}

/// Compares two `f32` slices with a relative/absolute tolerance and
/// reports the first mismatch.
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first differing index.
pub fn check_f32(label: &str, got: &[f32], want: &[f32], tol: f32) -> Result<(), VerifyError> {
    if got.len() != want.len() {
        return Err(VerifyError {
            detail: format!("{label}: length {} vs {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > tol * scale {
            return Err(VerifyError {
                detail: format!("{label}[{i}]: got {g}, want {w}"),
            });
        }
    }
    Ok(())
}

/// Compares two `u32` slices exactly and reports the first mismatch.
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first differing index.
pub fn check_u32(label: &str, got: &[u32], want: &[u32]) -> Result<(), VerifyError> {
    if got.len() != want.len() {
        return Err(VerifyError {
            detail: format!("{label}: length {} vs {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(VerifyError {
                detail: format!("{label}[{i}]: got {g}, want {w}"),
            });
        }
    }
    Ok(())
}

/// Runs a workload end-to-end on a fresh device: setup, every launch in
/// order, then verification. Returns the device for further inspection.
///
/// # Errors
///
/// Returns a [`WorkloadError`] on simulation failure or verification
/// mismatch.
pub fn run_workload(w: &mut dyn Workload, scale: Scale) -> Result<Device, WorkloadError> {
    let mut dev = Device::new();
    let launches = w.setup(&mut dev, scale)?;
    for l in &launches {
        dev.launch(&l.kernel, &l.config, &l.args)?;
    }
    w.verify(&dev)?;
    Ok(dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn check_f32_tolerance() {
        assert!(check_f32("x", &[1.0, 2.0], &[1.0, 2.0001], 1e-3).is_ok());
        assert!(check_f32("x", &[1.0], &[1.1], 1e-3).is_err());
        assert!(check_f32("x", &[1.0], &[1.0, 2.0], 1e-3).is_err());
    }

    #[test]
    fn check_u32_exact() {
        assert!(check_u32("x", &[1, 2], &[1, 2]).is_ok());
        let err = check_u32("x", &[1, 3], &[1, 2]).unwrap_err();
        assert!(err.detail.contains("x[1]"));
    }

    #[test]
    fn suite_names_unique() {
        let mut names: Vec<&str> = Suite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
