//! Extending the study with your own workload: implement
//! [`gwc::workloads::Workload`], characterize it, and place it in the
//! fitted PC space next to the paper's population.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use gwc::core::reduce::ReducedSpace;
use gwc::core::study::{Study, StudyConfig};
use gwc::simt::builder::KernelBuilder;
use gwc::simt::exec::{BufferHandle, Device};
use gwc::simt::instr::Value;
use gwc::simt::launch::LaunchConfig;
use gwc::simt::SimtError;
use gwc::stats::distance::euclidean;
use gwc::workloads::workload::check_u32;
use gwc::workloads::{LaunchSpec, Scale, Suite, VerifyError, Workload, WorkloadMeta};

/// A Collatz-iteration kernel: wildly data-dependent loop trip counts, so
/// it should land near the divergence-heavy corner of the space.
#[derive(Debug, Default)]
struct CollatzSteps {
    out: Option<BufferHandle>,
    expected: Vec<u32>,
}

impl Workload for CollatzSteps {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "collatz_steps",
            suite: Suite::Other,
            description: "Collatz step counts; extreme data-dependent divergence",
        }
    }

    fn setup(&mut self, device: &mut Device, scale: Scale) -> Result<Vec<LaunchSpec>, SimtError> {
        let n = scale.pick(256, 2048, 8192) as u32;
        self.expected = (0..n)
            .map(|i| {
                let mut v = i as u64 + 1;
                let mut steps = 0u32;
                while v != 1 {
                    v = if v.is_multiple_of(2) {
                        v / 2
                    } else {
                        3 * v + 1
                    };
                    steps += 1;
                }
                steps
            })
            .collect();
        let hout = device.alloc_zeroed_u32(n as usize);
        self.out = Some(hout);

        let mut b = KernelBuilder::new("collatz");
        let pout = b.param_u32("out");
        let pn = b.param_u32("n");
        let i = b.global_tid_x();
        let in_range = b.lt_u32(i, pn);
        b.if_(in_range, |b| {
            let start = b.add_u32(i, Value::U32(1));
            let v = b.var_u32(start);
            let steps = b.var_u32(Value::U32(0));
            b.while_(
                |b| b.ne_u32(v, Value::U32(1)),
                |b| {
                    let bit = b.and_u32(v, Value::U32(1));
                    let odd = b.eq_u32(bit, Value::U32(1));
                    let half = b.shr_u32(v, Value::U32(1));
                    let tripled = b.mad_u32(v, Value::U32(3), Value::U32(1));
                    let next = b.sel_u32(odd, tripled, half);
                    b.assign(v, next);
                    let ns = b.add_u32(steps, Value::U32(1));
                    b.assign(steps, ns);
                },
            );
            let oa = b.index(pout, i, 4);
            b.st_global_u32(oa, steps);
        });
        Ok(vec![LaunchSpec {
            label: "collatz".into(),
            kernel: b.build()?,
            config: LaunchConfig::linear(n, 128),
            args: vec![hout.arg(), Value::U32(n)],
        }])
    }

    fn verify(&self, device: &Device) -> Result<(), VerifyError> {
        let got = device.read_u32(self.out.as_ref().expect("setup"));
        check_u32("collatz", &got, &self.expected)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = StudyConfig {
        seed: 7,
        scale: Scale::Small,
        verify: true,
        ..StudyConfig::default()
    };
    let study = Study::run(&cfg)?.without_workload("vector_add");
    let space = ReducedSpace::fit(&study.matrix(), 0.9)?;

    // Characterize the custom workload and project it into the same space.
    let records = Study::run_one(&mut CollatzSteps::default(), &cfg)?;
    let profile = &records[0].profile;
    let point = space.project(profile.values())?;
    println!(
        "collatz_steps: simd activity {:.3}, divergent branch fraction {:.3}",
        profile.get("div_simd_activity"),
        profile.get("div_branch_frac")
    );

    // Nearest neighbours among the study population.
    let mut dists: Vec<(f64, String)> = study
        .labels()
        .iter()
        .enumerate()
        .map(|(r, l)| (euclidean(space.scores().row(r), &point), l.clone()))
        .collect();
    dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("\nnearest kernels in the fitted PC space:");
    for (d, label) in dists.iter().take(5) {
        println!("  {label:<40} distance {d:.3}");
    }
    Ok(())
}
