//! Design-space evaluation: how well do cluster representatives predict
//! the full population across GPU configurations?
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use gwc::core::eval::{evaluate_subset, random_subset_errors, stress_selection};
use gwc::core::pipeline::{Artifacts, PipelineConfig};
use gwc::stats::describe::mean;
use gwc::timing::sweep::default_design_space;
use gwc::timing::GpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The staged pipeline under its canonical default configuration.
    let artifacts = Artifacts::collect(&PipelineConfig::default());
    let study = artifacts.study();
    let reps = artifacts.analysis().representatives().to_vec();
    let labels = &artifacts.matrix.labels;
    println!(
        "representative subset ({} of {} kernels):",
        reps.len(),
        labels.len()
    );
    for &r in &reps {
        println!("  {}", labels[r]);
    }

    let baseline = GpuConfig::baseline();
    let configs = default_design_space();
    let eval = evaluate_subset(study, &baseline, &configs, &reps);
    println!(
        "\n{:<16} {:>10} {:>10} {:>8}",
        "design point", "truth", "estimate", "error"
    );
    for (name, truth, estimate, err) in &eval.rows {
        println!(
            "{name:<16} {truth:>10.3} {estimate:>10.3} {:>7.1}%",
            100.0 * err
        );
    }
    println!(
        "\nrepresentative-subset mean error: {:.2}% (max {:.2}%)",
        100.0 * eval.mean_error(),
        100.0 * eval.max_error()
    );

    let random = random_subset_errors(study, &baseline, &configs, reps.len(), 20, 99);
    println!(
        "random subsets of the same size:  {:.2}% mean error over 20 draws",
        100.0 * mean(&random)
    );

    println!("\nstress workloads per functional block:");
    for sel in stress_selection(study, 3) {
        let names: Vec<&str> = sel.top.iter().map(|(n, _)| n.as_str()).collect();
        println!("  {:<28} {}", sel.block, names.join(", "));
    }
    Ok(())
}
