//! The paper's headline analysis: characterize the whole workload
//! population, reduce dimensionality, cluster, and inspect subspace
//! diversity.
//!
//! ```sh
//! cargo run --release --example diversity_study
//! ```

use gwc::core::diversity::suite_diversity;
use gwc::core::pipeline::{Artifacts, PipelineConfig};
use gwc::core::report;
use gwc::core::subspace::{Subspace, SubspaceAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("running the characterization study (Small scale)...");
    // The staged pipeline: study -> matrix -> reduce -> cluster, with
    // the default config (seed 7, Small scale, verification on, the
    // quickstart `vector_add` excluded from the population).
    let artifacts = Artifacts::collect(&PipelineConfig::default());
    let study = artifacts.study();
    let space = artifacts.space();
    let analysis = artifacts.analysis();
    println!("characterized {} kernels\n", study.records().len());

    println!(
        "correlated dimensionality reduction: {} varying characteristics -> {} PCs ({:.1}% variance)\n",
        space.varying_dims(),
        space.kept(),
        100.0 * space.variance_explained()
    );

    // PC1-PC2 scatter (the paper's workload-space figure).
    let labels = &artifacts.matrix.labels;
    let xs: Vec<f64> = (0..space.scores().rows())
        .map(|r| space.scores().get(r, 0))
        .collect();
    let ys: Vec<f64> = (0..space.scores().rows())
        .map(|r| space.scores().get(r, 1))
        .collect();
    println!(
        "kernels in PC1-PC2:\n{}",
        report::render_scatter(labels, &xs, &ys, 72, 24)
    );

    // Clustering.
    println!("k-means/BIC selected k = {}", analysis.k());
    println!("cluster representatives:");
    for &r in analysis.representatives() {
        println!("  {}", labels[r]);
    }
    println!(
        "\ndendrogram (average linkage):\n{}",
        analysis.dendrogram().render(labels)
    );

    // Suite diversity.
    println!("suite diversity in the common PC space:");
    for d in suite_diversity(study, space.scores()) {
        println!(
            "  {:<10} kernels {:>3}  mean pairwise {:.3}  reach {:.3}",
            d.suite.name(),
            d.kernels,
            d.mean_pairwise,
            d.mean_reach
        );
    }

    // Subspace variation rankings — the abstract's named findings.
    for sub in [Subspace::divergence(), Subspace::coalescing()] {
        let a = SubspaceAnalysis::fit(study, sub)?;
        println!("\nworkload variation in the {} subspace:", a.subspace.name);
        for (w, v) in a.variation.iter().take(8) {
            println!("  {w:<22} {v:.3}");
        }
    }
    Ok(())
}
