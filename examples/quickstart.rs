//! Quickstart: build a kernel, run it on the SIMT device, characterize it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gwc::characterize::characterize_launch;
use gwc::core::pipeline::{Artifacts, PipelineConfig};
use gwc::core::study::StudyConfig;
use gwc::simt::builder::KernelBuilder;
use gwc::simt::exec::Device;
use gwc::simt::instr::Value;
use gwc::simt::launch::LaunchConfig;
use gwc::workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SAXPY: y[i] = alpha * x[i] + y[i]
    let mut b = KernelBuilder::new("saxpy");
    let alpha = b.param_f32("alpha");
    let x = b.param_u32("x");
    let y = b.param_u32("y");
    let n = b.param_u32("n");
    let i = b.global_tid_x();
    let in_range = b.lt_u32(i, n);
    b.if_(in_range, |b| {
        let xa = b.index(x, i, 4);
        let xv = b.ld_global_f32(xa);
        let ya = b.index(y, i, 4);
        let yv = b.ld_global_f32(ya);
        let r = b.mad_f32(alpha, xv, yv);
        b.st_global_f32(ya, r);
    });
    let kernel = b.build()?;

    let elems = 1 << 16;
    let mut dev = Device::new();
    let hx = dev.alloc_f32(&vec![1.0; elems]);
    let hy = dev.alloc_f32(&vec![2.0; elems]);

    let profile = characterize_launch(
        &mut dev,
        &kernel,
        &LaunchConfig::linear(elems as u32, 256),
        &[
            Value::F32(3.0),
            hx.arg(),
            hy.arg(),
            Value::U32(elems as u32),
        ],
    )?;

    // Correctness first.
    let result = dev.read_f32(&hy);
    assert!(result.iter().all(|&v| v == 5.0));
    println!("saxpy over {elems} elements: all values correct (5.0)\n");

    // The microarchitecture-independent profile.
    println!("{}", profile.render_table());
    println!(
        "executed {} warp instructions ({} thread instructions)",
        profile.stats().warp_instrs,
        profile.stats().thread_instrs
    );

    // The same staged pipeline the study tools (`regen`, `bench_run`)
    // drive, here at Tiny scale so the demo finishes in seconds:
    // study -> matrix -> reduce -> cluster.
    println!("\nrunning the full pipeline at Tiny scale...");
    let artifacts = Artifacts::collect(&PipelineConfig {
        study: StudyConfig {
            seed: 7,
            scale: Scale::Tiny,
            verify: true,
            ..StudyConfig::default()
        },
        ..PipelineConfig::default()
    });
    println!(
        "characterized {} kernels -> {} PCs -> k = {} clusters",
        artifacts.study().records().len(),
        artifacts.space().kept(),
        artifacts.analysis().k()
    );
    Ok(())
}
