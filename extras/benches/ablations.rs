//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! linkage criterion, PCA variance threshold, and the locality observer's
//! time-axis capacity. Each ablation benches the alternative and prints
//! (once, via criterion's reporting) its runtime cost; the accompanying
//! assertions document the *result* differences in tests below the
//! benches would be invisible, so the accuracy side lives in
//! `tests/ablations.rs` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gwc_core::reduce::ReducedSpace;
use gwc_core::study::{Study, StudyConfig};
use gwc_stats::hclust::{hierarchical, Linkage};
use gwc_workloads::Scale;

fn study() -> Study {
    Study::run(&StudyConfig {
        seed: 7,
        scale: Scale::Tiny,
        verify: false,
        ..StudyConfig::default()
    })
    .expect("study runs")
}

fn bench_linkage_choice(c: &mut Criterion) {
    let s = study();
    let space = ReducedSpace::fit(&s.matrix(), 0.9).expect("fits");
    let mut group = c.benchmark_group("ablation/linkage");
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        group.bench_function(format!("{linkage}"), |b| {
            b.iter(|| black_box(hierarchical(space.scores(), linkage).expect("fits")))
        });
    }
    group.finish();
}

fn bench_variance_threshold(c: &mut Criterion) {
    let s = study();
    let matrix = s.matrix();
    let mut group = c.benchmark_group("ablation/pca_threshold");
    for threshold in [0.85, 0.90, 0.95] {
        group.bench_function(format!("{threshold}"), |b| {
            b.iter(|| {
                let space = ReducedSpace::fit(&matrix, threshold).expect("fits");
                black_box(space.kept())
            })
        });
    }
    group.finish();
}

fn bench_locality_capacity(c: &mut Criterion) {
    use gwc_characterize::locality::LocalityObserver;
    use gwc_simt::instr::Space;
    use gwc_simt::trace::{AccessKind, MemEvent, TraceObserver};
    use gwc_simt::WARP_SIZE;

    let mut group = c.benchmark_group("ablation/locality_capacity");
    // A cyclic access pattern over 4k lines, 64k touches.
    for cap in [1 << 13, 1 << 16, 1 << 21] {
        group.bench_function(format!("cap_{cap}"), |b| {
            b.iter(|| {
                let mut obs = LocalityObserver::with_capacity(cap);
                let mut addrs = [0u32; WARP_SIZE];
                for round in 0..2048u32 {
                    for (lane, a) in addrs.iter_mut().enumerate() {
                        *a = ((round * 32 + lane as u32) % 4096) * 128;
                    }
                    obs.on_mem(&MemEvent {
                        block: 0,
                        warp: 0,
                        pc: 0,
                        space: Space::Global,
                        kind: AccessKind::Load,
                        bytes: 4,
                        active: u32::MAX,
                        addrs: &addrs,
                    });
                }
                black_box(obs.reuse_cdf(2))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linkage_choice,
    bench_variance_threshold,
    bench_locality_capacity
);
criterion_main!(benches);
