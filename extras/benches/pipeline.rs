//! Criterion benchmarks of the pipeline stages: simulator throughput,
//! characterization overhead, statistics kernels and per-experiment
//! regeneration cost (at Tiny scale so a full `cargo bench` stays quick).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gwc_characterize::Profiler;
use gwc_core::analysis::ClusterAnalysis;
use gwc_core::reduce::ReducedSpace;
use gwc_core::study::{Study, StudyConfig};
use gwc_core::subspace::{Subspace, SubspaceAnalysis};
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::Device;
use gwc_simt::instr::Value;
use gwc_simt::launch::LaunchConfig;
use gwc_stats::hclust::{hierarchical, Linkage};
use gwc_stats::kmeans::kmeans_best_bic;
use gwc_stats::pca::Pca;
use gwc_workloads::Scale;

fn saxpy_kernel() -> gwc_simt::kernel::Kernel {
    let mut b = KernelBuilder::new("saxpy");
    let x = b.param_u32("x");
    let y = b.param_u32("y");
    let n = b.param_u32("n");
    let i = b.global_tid_x();
    let p = b.lt_u32(i, n);
    b.if_(p, |b| {
        let xa = b.index(x, i, 4);
        let xv = b.ld_global_f32(xa);
        let ya = b.index(y, i, 4);
        let yv = b.ld_global_f32(ya);
        let r = b.mad_f32(Value::F32(2.0), xv, yv);
        b.st_global_f32(ya, r);
    });
    b.build().expect("valid kernel")
}

fn bench_executor(c: &mut Criterion) {
    let kernel = saxpy_kernel();
    let n = 1 << 14;
    c.bench_function("simt/saxpy_16k_untraced", |bch| {
        bch.iter(|| {
            let mut dev = Device::new();
            let hx = dev.alloc_f32(&vec![1.0; n]);
            let hy = dev.alloc_f32(&vec![2.0; n]);
            let stats = dev
                .launch(
                    &kernel,
                    &LaunchConfig::linear(n as u32, 256),
                    &[hx.arg(), hy.arg(), Value::U32(n as u32)],
                )
                .expect("runs");
            black_box(stats)
        })
    });
    c.bench_function("simt/saxpy_16k_profiled", |bch| {
        bch.iter(|| {
            let mut dev = Device::new();
            let hx = dev.alloc_f32(&vec![1.0; n]);
            let hy = dev.alloc_f32(&vec![2.0; n]);
            let mut profiler = Profiler::new();
            dev.launch_observed(
                &kernel,
                &LaunchConfig::linear(n as u32, 256),
                &[hx.arg(), hy.arg(), Value::U32(n as u32)],
                &mut profiler,
            )
            .expect("runs");
            black_box(profiler.finish("saxpy"))
        })
    });
}

fn tiny_study() -> Study {
    Study::run(&StudyConfig {
        seed: 7,
        scale: Scale::Tiny,
        verify: false,
        ..StudyConfig::default()
    })
    .expect("study runs")
}

fn bench_statistics(c: &mut Criterion) {
    let study = tiny_study();
    let matrix = study.matrix();
    let (z, _) = gwc_stats::normalize::zscore(&matrix);
    c.bench_function("stats/pca_fit", |bch| {
        bch.iter(|| black_box(Pca::fit(&z).expect("fits")))
    });
    let space = ReducedSpace::fit(&matrix, 0.9).expect("fits");
    c.bench_function("stats/hclust_average", |bch| {
        bch.iter(|| black_box(hierarchical(space.scores(), Linkage::Average).expect("fits")))
    });
    c.bench_function("stats/kmeans_bic", |bch| {
        bch.iter(|| black_box(kmeans_best_bic(space.scores(), 12, 7).expect("fits")))
    });
}

fn bench_study_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("full_tiny_study", |bch| {
        bch.iter(|| black_box(tiny_study()))
    });
    let study = tiny_study();
    group.bench_function("reduce_and_cluster", |bch| {
        bch.iter(|| {
            let space = ReducedSpace::fit(&study.matrix(), 0.9).expect("fits");
            let analysis = ClusterAnalysis::fit(space.scores(), 12, 7).expect("fits");
            black_box((space.kept(), analysis.k()))
        })
    });
    group.bench_function("subspace_analysis", |bch| {
        bch.iter(|| {
            black_box(SubspaceAnalysis::fit(&study, Subspace::divergence()).expect("fits"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_executor, bench_statistics, bench_study_stages);
criterion_main!(benches);
