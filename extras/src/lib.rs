//! See ../Cargo.toml — this crate only exists to host network-dependent
//! property tests and benches outside the offline workspace.
