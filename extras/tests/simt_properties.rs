//! Property-based tests of the SIMT executor: random straight-line
//! arithmetic agrees with a CPU evaluator, and divergence patterns never
//! corrupt per-thread results.

use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::Device;
use gwc_simt::instr::{Reg, Value};
use gwc_simt::launch::LaunchConfig;
use proptest::prelude::*;

/// A tiny expression language we can build both as IR and on the CPU.
#[derive(Debug, Clone)]
enum Expr {
    /// The thread id.
    Tid,
    /// A constant.
    Const(u32),
    /// Wrapping addition.
    Add(Box<Expr>, Box<Expr>),
    /// Wrapping multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Bitwise xor.
    Xor(Box<Expr>, Box<Expr>),
    /// Min of both sides.
    Min(Box<Expr>, Box<Expr>),
    /// Conditional: `if a < b { c } else { d }`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::Tid), (0u32..1000).prop_map(Expr::Const)];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c, d)| Expr::Select(
                    Box::new(a),
                    Box::new(b),
                    Box::new(c),
                    Box::new(d)
                )),
        ]
    })
}

fn eval_cpu(e: &Expr, tid: u32) -> u32 {
    match e {
        Expr::Tid => tid,
        Expr::Const(c) => *c,
        Expr::Add(a, b) => eval_cpu(a, tid).wrapping_add(eval_cpu(b, tid)),
        Expr::Mul(a, b) => eval_cpu(a, tid).wrapping_mul(eval_cpu(b, tid)),
        Expr::Xor(a, b) => eval_cpu(a, tid) ^ eval_cpu(b, tid),
        Expr::Min(a, b) => eval_cpu(a, tid).min(eval_cpu(b, tid)),
        Expr::Select(a, b, c, d) => {
            if eval_cpu(a, tid) < eval_cpu(b, tid) {
                eval_cpu(c, tid)
            } else {
                eval_cpu(d, tid)
            }
        }
    }
}

/// Emits the expression as IR. `Select` lowers to real divergent
/// control flow (if/else writing a variable) so the reconvergence stack
/// gets exercised, not just `sel` instructions.
fn emit(b: &mut KernelBuilder, e: &Expr, tid: Reg) -> Reg {
    match e {
        Expr::Tid => tid,
        Expr::Const(c) => b.var_u32(Value::U32(*c)),
        Expr::Add(x, y) => {
            let rx = emit(b, x, tid);
            let ry = emit(b, y, tid);
            b.add_u32(rx, ry)
        }
        Expr::Mul(x, y) => {
            let rx = emit(b, x, tid);
            let ry = emit(b, y, tid);
            b.mul_u32(rx, ry)
        }
        Expr::Xor(x, y) => {
            let rx = emit(b, x, tid);
            let ry = emit(b, y, tid);
            b.xor_u32(rx, ry)
        }
        Expr::Min(x, y) => {
            let rx = emit(b, x, tid);
            let ry = emit(b, y, tid);
            b.min_u32(rx, ry)
        }
        Expr::Select(x, y, t, f) => {
            let rx = emit(b, x, tid);
            let ry = emit(b, y, tid);
            let p = b.lt_u32(rx, ry);
            let out = b.var_u32(Value::U32(0));
            b.if_else(
                p,
                |b| {
                    let rt = emit(b, t, tid);
                    b.assign(out, rt);
                },
                |b| {
                    let rf = emit(b, f, tid);
                    b.assign(out, rf);
                },
            );
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_expressions_match_cpu(e in expr_strategy()) {
        let mut b = KernelBuilder::new("expr");
        let out = b.param_u32("out");
        let tid = b.global_tid_x();
        let result = emit(&mut b, &e, tid);
        let oa = b.index(out, tid, 4);
        b.st_global_u32(oa, result);
        let kernel = b.build().expect("valid");

        let n = 64usize;
        let mut dev = Device::new();
        let hout = dev.alloc_zeroed_u32(n);
        dev.launch(&kernel, &LaunchConfig::new(2, 32), &[hout.arg()])
            .expect("runs");
        let got = dev.read_u32(&hout);
        for t in 0..n as u32 {
            prop_assert_eq!(got[t as usize], eval_cpu(&e, t), "tid {}", t);
        }
    }

    #[test]
    fn masked_stores_touch_only_selected_threads(threshold in 0u32..64) {
        let mut b = KernelBuilder::new("mask");
        let out = b.param_u32("out");
        let t = b.param_u32("threshold");
        let i = b.global_tid_x();
        let p = b.lt_u32(i, t);
        b.if_(p, |b| {
            let oa = b.index(out, i, 4);
            b.st_global_u32(oa, Value::U32(1));
        });
        let kernel = b.build().expect("valid");

        let mut dev = Device::new();
        let hout = dev.alloc_zeroed_u32(64);
        dev.launch(
            &kernel,
            &LaunchConfig::new(2, 32),
            &[hout.arg(), Value::U32(threshold)],
        )
        .expect("runs");
        let got = dev.read_u32(&hout);
        for (i, &v) in got.iter().enumerate() {
            prop_assert_eq!(v, u32::from((i as u32) < threshold), "thread {}", i);
        }
    }

    #[test]
    fn data_dependent_loops_are_exact(divisors in proptest::collection::vec(1u32..17, 32)) {
        // Each thread counts multiples of its divisor below 100.
        let mut b = KernelBuilder::new("count");
        let out = b.param_u32("out");
        let divs = b.param_u32("divs");
        let i = b.global_tid_x();
        let da = b.index(divs, i, 4);
        let d = b.ld_global_u32(da);
        let count = b.var_u32(Value::U32(0));
        b.for_range_u32(Value::U32(1), Value::U32(100), 1, |b, j| {
            let m = b.rem_u32(j, d);
            let hit = b.eq_u32(m, Value::U32(0));
            b.if_(hit, |b| {
                let n = b.add_u32(count, Value::U32(1));
                b.assign(count, n);
            });
        });
        let oa = b.index(out, i, 4);
        b.st_global_u32(oa, count);
        let kernel = b.build().expect("valid");

        let mut dev = Device::new();
        let hdivs = dev.alloc_u32(&divisors);
        let hout = dev.alloc_zeroed_u32(32);
        dev.launch(&kernel, &LaunchConfig::new(1, 32), &[hout.arg(), hdivs.arg()])
            .expect("runs");
        let got = dev.read_u32(&hout);
        for (i, &d) in divisors.iter().enumerate() {
            let expect = (1..100).filter(|j| j % d == 0).count() as u32;
            prop_assert_eq!(got[i], expect, "thread {} divisor {}", i, d);
        }
    }
}
