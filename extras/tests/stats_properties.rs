//! Property-based tests of the statistics toolkit's invariants.

use gwc_stats::distance::{euclidean, manhattan, sq_euclidean};
use gwc_stats::hclust::{hierarchical, Linkage};
use gwc_stats::kmeans::kmeans;
use gwc_stats::normalize::zscore;
use gwc_stats::pca::Pca;
use gwc_stats::Matrix;
use proptest::prelude::*;

/// Strategy: a small matrix with finite, moderate values.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

proptest! {
    #[test]
    fn zscore_columns_have_zero_mean(m in matrix_strategy(12, 6)) {
        let (z, _) = zscore(&m);
        for c in 0..z.cols() {
            prop_assert!(z.col_mean(c).abs() < 1e-9);
        }
    }

    #[test]
    fn zscore_columns_have_unit_or_zero_std(m in matrix_strategy(12, 6)) {
        let (z, _) = zscore(&m);
        for c in 0..z.cols() {
            let s = z.col_std(c);
            prop_assert!((s - 1.0).abs() < 1e-9 || s.abs() < 1e-9, "std {s}");
        }
    }

    #[test]
    fn pca_full_rank_preserves_pairwise_distances(m in matrix_strategy(10, 5)) {
        let pca = Pca::fit(&m).expect("fits");
        let t = pca.transform(&m, m.cols()).expect("transforms");
        for a in 0..m.rows() {
            for b in (a + 1)..m.rows() {
                let d0 = euclidean(m.row(a), m.row(b));
                let d1 = euclidean(t.row(a), t.row(b));
                prop_assert!((d0 - d1).abs() < 1e-6 * (1.0 + d0), "{d0} vs {d1}");
            }
        }
    }

    #[test]
    fn pca_variance_explained_is_monotone_cdf(m in matrix_strategy(10, 6)) {
        let pca = Pca::fit(&m).expect("fits");
        let mut prev = 0.0;
        for k in 1..=m.cols() {
            let v = pca.variance_explained(k);
            prop_assert!(v >= prev - 1e-12);
            prop_assert!(v <= 1.0 + 1e-9);
            prev = v;
        }
        prop_assert!((pca.variance_explained(m.cols()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hclust_cut_produces_exactly_k_clusters(m in matrix_strategy(10, 4), linkage_idx in 0usize..3) {
        let linkage = [Linkage::Single, Linkage::Complete, Linkage::Average][linkage_idx];
        let d = hierarchical(&m, linkage).expect("fits");
        for k in 1..=m.rows() {
            let labels = d.cut(k).expect("cuts");
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k);
            prop_assert!(labels.iter().all(|&l| l < k));
        }
    }

    #[test]
    fn kmeans_labels_valid_and_inertia_nonnegative(
        m in matrix_strategy(12, 4),
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= m.rows());
        let km = kmeans(&m, k, seed).expect("fits");
        prop_assert_eq!(km.labels.len(), m.rows());
        prop_assert!(km.labels.iter().all(|&l| l < k));
        prop_assert!(km.inertia >= 0.0);
        // Every observation is closest to its own centroid's cluster? Not
        // guaranteed mid-swap, but after convergence assignment is greedy:
        for (i, &l) in km.labels.iter().enumerate() {
            let own = sq_euclidean(m.row(i), km.centroids.row(l));
            for c in 0..k {
                prop_assert!(own <= sq_euclidean(m.row(i), km.centroids.row(c)) + 1e-9);
            }
        }
    }

    #[test]
    fn distances_satisfy_metric_axioms(
        a in proptest::collection::vec(-50.0f64..50.0, 4),
        b in proptest::collection::vec(-50.0f64..50.0, 4),
        c in proptest::collection::vec(-50.0f64..50.0, 4),
    ) {
        prop_assert!(euclidean(&a, &b) >= 0.0);
        prop_assert!((euclidean(&a, &b) - euclidean(&b, &a)).abs() < 1e-12);
        prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
        prop_assert!(manhattan(&a, &b) + 1e-9 >= euclidean(&a, &b));
    }
}
