//! # gwc — GPGPU Workload Characterization
//!
//! Umbrella crate re-exporting the whole toolkit. See the individual crates
//! for details:
//!
//! * [`obs`] — observability (spans, counters, metrics reports),
//! * [`simt`] — SIMT kernel IR and execution engine,
//! * [`characterize`] — microarchitecture-independent characteristics,
//! * [`workloads`] — the benchmark suite (CUDA SDK / Parboil / Rodinia / misc),
//! * [`stats`] — PCA, clustering and supporting statistics,
//! * [`timing`] — analytical GPU performance model,
//! * [`core`] — the end-to-end characterization pipeline and analyses.

pub use gwc_characterize as characterize;
pub use gwc_core as core;
pub use gwc_obs as obs;
pub use gwc_simt as simt;
pub use gwc_stats as stats;
pub use gwc_timing as timing;
pub use gwc_workloads as workloads;
