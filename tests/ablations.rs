//! Accuracy side of the ablations (the speed side lives in
//! `crates/bench/benches/ablations.rs`): how the study's conclusions move
//! when a design choice changes.

use gwc::core::analysis::ClusterAnalysis;
use gwc::core::reduce::ReducedSpace;
use gwc::core::study::{Study, StudyConfig};
use gwc::stats::hclust::{hierarchical, Linkage};
use gwc::workloads::Scale;
use std::sync::OnceLock;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Study::run(&StudyConfig {
            seed: 7,
            scale: Scale::Tiny,
            verify: false,
            ..StudyConfig::default()
        })
        .expect("study runs")
        .without_workload("vector_add")
    })
}

#[test]
fn pca_threshold_monotonically_adds_components() {
    let m = study().matrix();
    let k85 = ReducedSpace::fit(&m, 0.85).unwrap().kept();
    let k90 = ReducedSpace::fit(&m, 0.90).unwrap().kept();
    let k95 = ReducedSpace::fit(&m, 0.95).unwrap().kept();
    assert!(k85 <= k90 && k90 <= k95);
    assert!(k95 > k85, "the threshold choice matters");
}

#[test]
fn representative_set_is_stable_across_threshold() {
    // The cluster count may shift slightly, but representative selection
    // must stay sane (non-empty, within bounds) across thresholds.
    let m = study().matrix();
    for threshold in [0.85, 0.90, 0.95] {
        let space = ReducedSpace::fit(&m, threshold).unwrap();
        let analysis = ClusterAnalysis::fit(space.scores(), 12, 7).unwrap();
        assert!(analysis.k() >= 2);
        assert!(analysis.representatives().len() == analysis.k());
    }
}

#[test]
fn linkage_choice_changes_heights_not_sanity() {
    let m = study().matrix();
    let space = ReducedSpace::fit(&m, 0.9).unwrap();
    let n = space.scores().rows();
    let mut final_heights = Vec::new();
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let d = hierarchical(space.scores(), linkage).unwrap();
        assert_eq!(d.merges().len(), n - 1);
        final_heights.push(d.merges().last().unwrap().height);
    }
    // single <= average <= complete at the final merge.
    assert!(final_heights[0] <= final_heights[2] + 1e-12);
    assert!(final_heights[2] >= final_heights[1] - 1e-9 || final_heights[1] >= final_heights[0]);
}

#[test]
fn locality_capacity_does_not_change_results() {
    use gwc::characterize::locality::LocalityObserver;
    use gwc::simt::instr::Space;
    use gwc::simt::trace::{AccessKind, MemEvent, TraceObserver};
    use gwc::simt::WARP_SIZE;

    let run = |cap: usize| {
        let mut obs = LocalityObserver::with_capacity(cap);
        let mut addrs = [0u32; WARP_SIZE];
        for round in 0..512u32 {
            for (lane, a) in addrs.iter_mut().enumerate() {
                *a = ((round * 7 + lane as u32 * 3) % 600) * 128;
            }
            obs.on_mem(&MemEvent {
                block: round % 4,
                warp: 0,
                pc: 0,
                space: Space::Global,
                kind: AccessKind::Load,
                bytes: 4,
                active: u32::MAX,
                addrs: &addrs,
            });
        }
        (
            obs.reuse_cdf(0),
            obs.reuse_cdf(1),
            obs.reuse_cdf(2),
            obs.cold_frac(),
            obs.footprint_lines(),
        )
    };
    // The compression is exact: results are identical at any capacity that
    // fits the footprint.
    assert_eq!(run(1 << 10), run(1 << 20));
}
