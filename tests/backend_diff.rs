//! Cross-backend differential harness: the SIMD warp engine must be
//! bit-identical to the scalar reference.
//!
//! "Bit-identical" is checked at every observable layer:
//!
//! 1. **Trace stream** — every registry kernel runs through both
//!    backends under a [`TraceHasher`], which folds the full event
//!    stream (instructions with class/active/live/operands, per-lane
//!    memory addresses, branch outcomes, barriers, launch stats) into
//!    one digest. Equal digests mean the engines retired the same
//!    events in the same order with the same masks and addresses.
//! 2. **Memory image** — after each workload the devices' entire
//!    global memory must match byte for byte, and the workload's own
//!    `verify()` must pass on the SIMD device.
//! 3. **Profiles** — the 33-dimension characteristic vector produced
//!    by the sharded characterization runtime matches bitwise across
//!    backends at 1, 2, 4 and 8 threads.
//! 4. **Generated kernels** — hundreds of seeded random kernels from
//!    [`gwc::simt::kgen`] (divergence / stride / atomic-density knobs)
//!    sweep the corners registry workloads don't reach. Set
//!    `GWC_DIFF_KERNELS` to change the count; the `#[ignore]`d
//!    `fuzz_500_generated_kernels` test is the CI nightly-style step.
//!
//! Backends are pinned per [`Device`] via [`Device::with_backend`] —
//! never via the process-global default or `GWC_BACKEND`, which would
//! race across the test harness's threads.

use std::collections::HashSet;

use gwc::characterize::characterize_launch_sharded;
use gwc::simt::backend::BackendKind;
use gwc::simt::exec::Device;
use gwc::simt::kgen;
use gwc::simt::trace::TraceHasher;
use gwc::simt::SimtError;
use gwc::workloads::{registry, Scale};

/// Registry seed; arbitrary but fixed so both backend instances see
/// identical workload data.
const SEED: u64 = 7;

/// Distinct kernels the registry must exercise for the differential
/// run to count as covering the suite. The registry currently ships
/// 41 distinct kernels across 115 launches; this floor catches an
/// accidental shrink without forbidding growth.
const MIN_REGISTRY_KERNELS: usize = 41;

fn diff_kernel_count() -> u64 {
    std::env::var("GWC_DIFF_KERNELS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Runs every launch of every registry workload through both backends
/// and asserts the traces, stats, final memory images and workload
/// verification all agree.
#[test]
fn registry_traces_bit_identical_across_backends() {
    let mut scalar_wl = registry::all_workloads(SEED);
    let mut simd_wl = registry::all_workloads(SEED);
    assert_eq!(scalar_wl.len(), simd_wl.len());

    let mut kernels = HashSet::new();
    for (ws, wp) in scalar_wl.iter_mut().zip(simd_wl.iter_mut()) {
        let name = ws.meta().name;
        let mut ds = Device::with_backend(BackendKind::Scalar);
        let mut dp = Device::with_backend(BackendKind::Simd);
        let specs_s = ws.setup(&mut ds, Scale::Tiny).expect("scalar setup");
        let specs_p = wp.setup(&mut dp, Scale::Tiny).expect("simd setup");
        assert_eq!(specs_s.len(), specs_p.len(), "{name}: launch count");

        for (ls, lp) in specs_s.iter().zip(specs_p.iter()) {
            assert_eq!(
                ls.kernel.content_hash(),
                lp.kernel.content_hash(),
                "{name}/{}: setup must be backend-independent",
                ls.label
            );
            kernels.insert(ls.kernel.content_hash());

            let mut hs = TraceHasher::new();
            let mut hp = TraceHasher::new();
            let ss = ds
                .launch_observed(&ls.kernel, &ls.config, &ls.args, &mut hs)
                .expect("scalar launch");
            let sp = dp
                .launch_observed(&lp.kernel, &lp.config, &lp.args, &mut hp)
                .expect("simd launch");
            assert_eq!(ss, sp, "{name}/{}: launch stats", ls.label);
            assert_eq!(
                hs.events(),
                hp.events(),
                "{name}/{}: trace event count",
                ls.label
            );
            assert_eq!(
                hs.digest(),
                hp.digest(),
                "{name}/{}: trace digest",
                ls.label
            );
        }

        assert_eq!(
            ds.global_image(),
            dp.global_image(),
            "{name}: global memory image"
        );
        ws.verify(&ds).expect("scalar verify");
        wp.verify(&dp).expect("simd verify");
    }

    assert!(
        kernels.len() >= MIN_REGISTRY_KERNELS,
        "registry exercised only {} distinct kernels (< {MIN_REGISTRY_KERNELS})",
        kernels.len()
    );
}

/// The characteristic vectors from the sharded runtime must match
/// bitwise across backends at every supported thread count.
#[test]
fn registry_profiles_bit_identical_across_backends_and_threads() {
    for threads in [1usize, 2, 4, 8] {
        let mut scalar_wl = registry::all_workloads(SEED);
        let mut simd_wl = registry::all_workloads(SEED);
        for (ws, wp) in scalar_wl.iter_mut().zip(simd_wl.iter_mut()) {
            let name = ws.meta().name;
            let mut ds = Device::with_backend(BackendKind::Scalar);
            let mut dp = Device::with_backend(BackendKind::Simd);
            let specs_s = ws.setup(&mut ds, Scale::Tiny).expect("scalar setup");
            let specs_p = wp.setup(&mut dp, Scale::Tiny).expect("simd setup");

            for (ls, lp) in specs_s.iter().zip(specs_p.iter()) {
                let ps =
                    characterize_launch_sharded(&mut ds, &ls.kernel, &ls.config, &ls.args, threads)
                        .expect("scalar profile");
                let pp =
                    characterize_launch_sharded(&mut dp, &lp.kernel, &lp.config, &lp.args, threads)
                        .expect("simd profile");
                assert_eq!(
                    ps.raw(),
                    pp.raw(),
                    "{name}/{} @{threads} threads: raw counts",
                    ls.label
                );
                let vs: Vec<u64> = ps.values().iter().map(|v| v.to_bits()).collect();
                let vp: Vec<u64> = pp.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    vs, vp,
                    "{name}/{} @{threads} threads: characteristic vector",
                    ls.label
                );
            }
        }
    }
}

/// Retired-µop accounting must be backend-invariant: with execution
/// profiling forced on (no recorder needed), both engines must report
/// identical per-µop-class and per-pc warp/lane counts for every
/// registry launch. This pins the fusion discipline — a fused SIMD pair
/// accounts each half at its own pc, exactly like the scalar engine.
#[test]
fn exec_profiles_identical_across_backends() {
    let mut scalar_wl = registry::all_workloads(SEED);
    let mut simd_wl = registry::all_workloads(SEED);
    for (ws, wp) in scalar_wl.iter_mut().zip(simd_wl.iter_mut()) {
        let name = ws.meta().name;
        let mut ds = Device::with_backend(BackendKind::Scalar);
        let mut dp = Device::with_backend(BackendKind::Simd);
        ds.set_exec_profiling(Some(true));
        dp.set_exec_profiling(Some(true));
        let specs_s = ws.setup(&mut ds, Scale::Tiny).expect("scalar setup");
        let specs_p = wp.setup(&mut dp, Scale::Tiny).expect("simd setup");

        for (ls, lp) in specs_s.iter().zip(specs_p.iter()) {
            let ss = ds
                .launch(&ls.kernel, &ls.config, &ls.args)
                .expect("scalar launch");
            let sp = dp
                .launch(&lp.kernel, &lp.config, &lp.args)
                .expect("simd launch");
            let es = ds.take_exec_profile().expect("scalar profile collected");
            let ep = dp.take_exec_profile().expect("simd profile collected");
            assert_eq!(es, ep, "{name}/{}: exec profiles", ls.label);
            // The profile shadows the launch statistics exactly: both
            // engines account one µop per retired (fused-half) µop.
            assert_eq!(ss, sp, "{name}/{}: launch stats", ls.label);
            let total = es.total();
            assert_eq!(
                total.warp_uops, ss.warp_instrs,
                "{name}/{}: warp µops",
                ls.label
            );
            assert_eq!(
                total.lane_uops, ss.thread_instrs,
                "{name}/{}: lane µops",
                ls.label
            );
        }
    }
}

/// Runs one generated kernel through both backends and asserts trace,
/// stats and memory equivalence (or that both fail identically).
fn diff_generated(seed: u64) {
    let gk = kgen::generate_seeded(seed).expect("kernel generation");
    let mut ds = Device::with_backend(BackendKind::Scalar);
    let mut dp = Device::with_backend(BackendKind::Simd);
    let args_s = gk.alloc_args(&mut ds);
    let args_p = gk.alloc_args(&mut dp);

    let mut hs = TraceHasher::new();
    let mut hp = TraceHasher::new();
    let rs = ds.launch_observed(&gk.kernel, &gk.config, &args_s.args, &mut hs);
    let rp = dp.launch_observed(&gk.kernel, &gk.config, &args_p.args, &mut hp);

    match (&rs, &rp) {
        (Ok(ss), Ok(sp)) => assert_eq!(ss, sp, "seed {seed}: launch stats"),
        (Err(es), Err(ep)) => {
            assert_eq!(format!("{es:?}"), format!("{ep:?}"), "seed {seed}: errors")
        }
        _ => panic!("seed {seed}: one backend failed, the other did not: {rs:?} vs {rp:?}"),
    }
    assert_eq!(hs.events(), hp.events(), "seed {seed}: trace event count");
    assert_eq!(hs.digest(), hp.digest(), "seed {seed}: trace digest");
    assert_eq!(
        ds.global_image(),
        dp.global_image(),
        "seed {seed}: global memory image"
    );
    assert_eq!(
        ds.read_u32(&args_s.out),
        dp.read_u32(&args_p.out),
        "seed {seed}: u32 outputs"
    );
}

/// Sweeps seeded random kernels (default 200, `GWC_DIFF_KERNELS` to
/// override) through both backends.
#[test]
fn generated_kernels_bit_identical_across_backends() {
    let n = diff_kernel_count();
    for seed in 0..n {
        diff_generated(seed);
    }
}

/// Generated kernels without atomics honor the block-sharding contract
/// (read-only loads, thread-private stores), so their profiles must
/// also agree across backends and thread counts. Kernels with atomics
/// exercise the serial fallback instead — both are profiled.
#[test]
fn generated_kernel_profiles_match_across_backends() {
    for seed in 200..240 {
        let gk = kgen::generate_seeded(seed).expect("kernel generation");
        for threads in [1usize, 4] {
            let mut ds = Device::with_backend(BackendKind::Scalar);
            let mut dp = Device::with_backend(BackendKind::Simd);
            let args_s = gk.alloc_args(&mut ds);
            let args_p = gk.alloc_args(&mut dp);
            let ps =
                characterize_launch_sharded(&mut ds, &gk.kernel, &gk.config, &args_s.args, threads);
            let pp =
                characterize_launch_sharded(&mut dp, &gk.kernel, &gk.config, &args_p.args, threads);
            match (ps, pp) {
                (Ok(ps), Ok(pp)) => {
                    assert_eq!(ps.raw(), pp.raw(), "seed {seed} @{threads}: raw counts");
                    let vs: Vec<u64> = ps.values().iter().map(|v| v.to_bits()).collect();
                    let vp: Vec<u64> = pp.values().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(vs, vp, "seed {seed} @{threads}: characteristic vector");
                }
                (Err(es), Err(ep)) => {
                    assert_eq!(format!("{es:?}"), format!("{ep:?}"), "seed {seed}: errors")
                }
                (ps, pp) => panic!("seed {seed}: backend disagreement: {ps:?} vs {pp:?}"),
            }
        }
    }
}

/// Faulting kernels must fault identically: same error, same partial
/// memory writes, same trace prefix. Exercises the out-of-bounds and
/// divide-by-zero paths the generator deliberately avoids.
#[test]
fn faulting_kernels_fail_identically_across_backends() {
    use gwc::simt::builder::KernelBuilder;
    use gwc::simt::instr::Value;
    use gwc::simt::launch::LaunchConfig;

    // Out-of-bounds store at a thread-dependent pc.
    let mut b = KernelBuilder::new("oob_store");
    let base = b.param_u32("base");
    let i = b.global_tid_x();
    let addr = b.index(base, i, 64);
    b.st_global_u32(addr, i);
    let oob = b.build().expect("build oob kernel");

    // Divide by a value that is zero for the lower half-warp.
    let mut b = KernelBuilder::new("div_fault");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let divisor = b.and_u32(i, Value::U32(16));
    let q = b.div_u32(i, divisor);
    let addr = b.index(out, i, 4);
    b.st_global_u32(addr, q);
    let div = b.build().expect("build div kernel");

    for kernel in [&oob, &div] {
        let mut ds = Device::with_backend(BackendKind::Scalar);
        let mut dp = Device::with_backend(BackendKind::Simd);
        let bs = ds.alloc_zeroed_u32(8);
        let bp = dp.alloc_zeroed_u32(8);
        let cfg = LaunchConfig::linear(64, 64);
        let mut hs = TraceHasher::new();
        let mut hp = TraceHasher::new();
        let rs = ds.launch_observed(kernel, &cfg, &[bs.arg()], &mut hs);
        let rp = dp.launch_observed(kernel, &cfg, &[bp.arg()], &mut hp);
        let es = rs.expect_err("scalar launch must fault");
        let ep = rp.expect_err("simd launch must fault");
        assert!(matches!(
            es,
            SimtError::OutOfBounds { .. } | SimtError::DivideByZero { .. }
        ));
        assert_eq!(
            format!("{es:?}"),
            format!("{ep:?}"),
            "{}: error",
            kernel.name()
        );
        assert_eq!(hs.digest(), hp.digest(), "{}: trace prefix", kernel.name());
        assert_eq!(
            ds.global_image(),
            dp.global_image(),
            "{}: partial writes",
            kernel.name()
        );
    }
}

/// Co-scheduled pair launches must be bit-identical across backends
/// under every dispatch policy — and each member's own trace must equal
/// its solo run. Every policy keeps a kernel's blocks in ascending
/// order on one device, so co-residence never changes what either
/// member executes: interference is observational (the shared reuse
/// timeline), never semantic.
///
/// The solo baselines set up *both* members (so the device heap layout
/// matches the co-run byte for byte) but launch only one, making the
/// per-member trace digests directly comparable.
#[test]
fn pair_launches_bit_identical_across_backends_and_policies() {
    use gwc::simt::exec::PairLaunch;
    use gwc::simt::sched::{PerKernel, SchedPolicy};
    use gwc::workloads::pairs::{partner_member, registry_member, PAIR_SCENARIOS};
    use gwc::workloads::LaunchSpec;

    fn pl(l: &LaunchSpec) -> PairLaunch<'_> {
        PairLaunch {
            kernel: &l.kernel,
            config: &l.config,
            args: &l.args,
        }
    }

    for scenario in &PAIR_SCENARIOS {
        // Per member: one (digest, events, stats) entry per launch.
        let mut solo = [Vec::new(), Vec::new()];
        for (member, records) in solo.iter_mut().enumerate() {
            let mut wa = registry_member(scenario.a, SEED);
            let mut wb = partner_member(scenario.partner, SEED);
            let mut dev = Device::with_backend(BackendKind::Simd);
            let la = wa.setup(&mut dev, Scale::Tiny).expect("solo setup a");
            let lb = wb.setup(&mut dev, Scale::Tiny).expect("solo setup b");
            for l in if member == 0 { &la } else { &lb } {
                let mut h = TraceHasher::new();
                let stats = dev
                    .launch_observed(&l.kernel, &l.config, &l.args, &mut h)
                    .expect("solo launch");
                records.push((h.digest(), h.events(), stats));
            }
        }

        for policy in SchedPolicy::ALL {
            let what = format!("{}/{}", scenario.name, policy.name());
            let mut a_s = registry_member(scenario.a, SEED);
            let mut b_s = partner_member(scenario.partner, SEED);
            let mut a_p = registry_member(scenario.a, SEED);
            let mut b_p = partner_member(scenario.partner, SEED);
            let mut ds = Device::with_backend(BackendKind::Scalar);
            let mut dp = Device::with_backend(BackendKind::Simd);
            let la_s = a_s.setup(&mut ds, Scale::Tiny).expect("scalar setup a");
            let lb_s = b_s.setup(&mut ds, Scale::Tiny).expect("scalar setup b");
            let la_p = a_p.setup(&mut dp, Scale::Tiny).expect("simd setup a");
            let lb_p = b_p.setup(&mut dp, Scale::Tiny).expect("simd setup b");
            let paired = la_s.len().min(lb_s.len());

            for i in 0..paired {
                let mut hs = PerKernel::new(vec![TraceHasher::new(), TraceHasher::new()]);
                let mut hp = PerKernel::new(vec![TraceHasher::new(), TraceHasher::new()]);
                let ss = ds
                    .launch_pair(pl(&la_s[i]), pl(&lb_s[i]), policy, &mut hs)
                    .expect("scalar pair launch");
                let sp = dp
                    .launch_pair(pl(&la_p[i]), pl(&lb_p[i]), policy, &mut hp)
                    .expect("simd pair launch");
                assert_eq!(ss, sp, "{what}: pair launch stats");
                let hs = hs.into_members();
                let hp = hp.into_members();
                for m in 0..2 {
                    assert_eq!(
                        hs[m].digest(),
                        hp[m].digest(),
                        "{what}: member {m} trace digest"
                    );
                    let (digest, events, stats) = &solo[m][i];
                    assert_eq!(
                        hs[m].digest(),
                        *digest,
                        "{what}: member {m} co-run trace must equal its solo run"
                    );
                    assert_eq!(hs[m].events(), *events, "{what}: member {m} event count");
                    assert_eq!(ss[m], *stats, "{what}: member {m} stats must equal solo");
                }
            }
            // Leftover launches of the longer member keep both devices
            // (and the solo baseline) in lockstep.
            for (specs_s, specs_p) in [(&la_s, &la_p), (&lb_s, &lb_p)] {
                for (ls, lp) in specs_s.iter().zip(specs_p.iter()).skip(paired) {
                    let ss = ds
                        .launch(&ls.kernel, &ls.config, &ls.args)
                        .expect("scalar leftover");
                    let sp = dp
                        .launch(&lp.kernel, &lp.config, &lp.args)
                        .expect("simd leftover");
                    assert_eq!(ss, sp, "{what}: leftover stats");
                }
            }

            assert_eq!(
                ds.global_image(),
                dp.global_image(),
                "{what}: global memory image"
            );
            a_s.verify(&ds).expect("scalar member a verifies");
            b_s.verify(&ds).expect("scalar member b verifies");
            a_p.verify(&dp).expect("simd member a verifies");
            b_p.verify(&dp).expect("simd member b verifies");
        }
    }
}

/// Nightly-style fuzz sweep: 500 generated kernels through the
/// differential check. Run explicitly (CI does) with
/// `cargo test --test backend_diff -- --ignored`.
#[test]
#[ignore = "long fuzz sweep; run explicitly or via the CI fuzz job"]
fn fuzz_500_generated_kernels() {
    for seed in 1_000..1_500 {
        diff_generated(seed);
    }
}
