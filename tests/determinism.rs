//! Determinism suite: the parallel characterization runtime must be
//! bit-identical to the serial one.
//!
//! Three guarantees, each checked over the full workload registry:
//!
//! 1. **Block sharding** — profiling a workload with its launches
//!    sharded across {2, 4, 8} threads yields the same 33-dimension
//!    characteristic vector, bit for bit, as the serial run
//!    (`Study::run_one_threads` vs `Study::run_one`). Kernels outside
//!    the block-sharding contract fall back to serial, so this holds
//!    for *every* workload, atomics and all.
//! 2. **Workload fan-out** — `Study::run_threads` distributes whole
//!    workloads across workers and reassembles records in registry
//!    order; the study matrix matches the serial study bitwise.
//! 3. **Seed stability** — two runs with the same seed and thread
//!    count are identical, and runs at different thread counts agree.
//!
//! Floating-point equality here is deliberate and exact
//! (`f64::to_bits`): the observers accumulate in integer domain and
//! convert to `f64` only at read time in a fixed order, so any
//! difference is a real merge bug, not roundoff.

use gwc::core::study::{KernelRecord, Study, StudyConfig};
use gwc::workloads::{registry, Scale};

fn tiny_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        scale: Scale::Tiny,
        verify: true,
        ..StudyConfig::default()
    }
}

/// Asserts two record sets are bitwise-identical profiles.
fn assert_records_identical(serial: &[KernelRecord], parallel: &[KernelRecord], what: &str) {
    assert_eq!(serial.len(), parallel.len(), "{what}: record count");
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s.workload, p.workload, "{what}: workload order");
        assert_eq!(s.kernel, p.kernel, "{what}: kernel label order");
        assert_eq!(
            s.profile.raw(),
            p.profile.raw(),
            "{what}: raw counters of {}",
            s.label()
        );
        for (dim, (a, b)) in s
            .profile
            .values()
            .iter()
            .zip(p.profile.values())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: {} dim {dim}: {a} vs {b}",
                s.label()
            );
        }
    }
}

#[test]
fn every_workload_block_sharded_matches_serial() {
    let config = tiny_config(7);
    let serial: Vec<Vec<KernelRecord>> = registry::all_workloads(config.seed)
        .iter_mut()
        .map(|w| Study::run_one(w.as_mut(), &config).expect("serial run"))
        .collect();
    for threads in [2usize, 4, 8] {
        let sharded: Vec<Vec<KernelRecord>> = registry::all_workloads(config.seed)
            .iter_mut()
            .map(|w| Study::run_one_threads(w.as_mut(), &config, threads).expect("sharded run"))
            .collect();
        for (s, p) in serial.iter().zip(&sharded) {
            let name = s.first().map_or("<empty>", |r| r.workload);
            assert_records_identical(s, p, &format!("{name} at {threads} threads"));
        }
    }
}

#[test]
fn study_fanout_matches_serial() {
    let config = tiny_config(7);
    let serial = Study::run(&config).expect("serial study");
    for threads in [2usize, 4, 8] {
        let parallel = Study::run_threads(&config, threads).expect("parallel study");
        assert_records_identical(
            serial.records(),
            parallel.records(),
            &format!("study fan-out at {threads} threads"),
        );
    }
}

#[test]
fn same_seed_repeats_identically() {
    let config = tiny_config(13);
    let a = Study::run_threads(&config, 4).expect("first run");
    let b = Study::run_threads(&config, 4).expect("second run");
    assert_records_identical(a.records(), b.records(), "repeated seed-13 runs");
}

/// The co-scheduled pair study (experiment E14's input) is bit-identical
/// no matter how many threads computed the solo study it references:
/// the co-run itself is serial by construction (a shared timeline is a
/// total order), and the solo-reference columns come from the study
/// fan-out, which guarantees 1 above. Checked under every dispatch
/// policy, including a same-policy repeat.
#[test]
fn pair_study_identical_across_thread_counts_and_policies() {
    use gwc::core::pairs::PairStudy;
    use gwc::simt::sched::SchedPolicy;

    let config = tiny_config(7);
    let serial = Study::run(&config).expect("serial study");
    let baseline: Vec<PairStudy> = SchedPolicy::ALL
        .iter()
        .map(|&p| PairStudy::run(7, Scale::Tiny, false, p, &serial))
        .collect();
    for threads in [1usize, 2, 4, 8] {
        let parallel = Study::run_threads(&config, threads).expect("parallel study");
        for (policy, base) in SchedPolicy::ALL.iter().zip(&baseline) {
            let again = PairStudy::run(7, Scale::Tiny, false, *policy, &parallel);
            assert_eq!(base.records().len(), again.records().len());
            for (x, y) in base.records().iter().zip(again.records()) {
                assert_eq!(
                    x.profile,
                    y.profile,
                    "{} under {} with a {threads}-thread solo study",
                    x.scenario.name,
                    policy.name()
                );
                assert_eq!(
                    x.solo_ref,
                    y.solo_ref,
                    "{} under {}: solo references at {threads} threads",
                    x.scenario.name,
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the suite isn't vacuous: seeds actually steer
    // the workload inputs, so some characteristic must move.
    let a = Study::run_threads(&tiny_config(7), 2).expect("seed 7");
    let b = Study::run_threads(&tiny_config(8), 2).expect("seed 8");
    let moved = a
        .records()
        .iter()
        .zip(b.records())
        .any(|(x, y)| x.profile.values() != y.profile.values());
    assert!(moved, "changing the seed changed no characteristic at all");
}
