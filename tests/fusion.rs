//! Decode-fusion equivalence suite: superinstruction fusion is a pure
//! speed optimization and must be architecturally invisible.
//!
//! The SIMD engine executes fused pairs (cmp+branch, mul+add, ld+cvt)
//! through dedicated two-µop executors, but each half still accounts
//! its own instruction at its own pc, so fusion-on and fusion-off runs
//! must produce byte-identical trace streams, stats and memory — not
//! just equal results. Checked over every registry kernel and a sweep
//! of generated kernels; the sweep also asserts all three fusion kinds
//! actually occur, so the fused executors cannot silently rot.
//!
//! Fusion is toggled per [`Device`] via [`Device::set_fusion`], never
//! via the process-global `GWC_FUSION` default (test threads race).

use std::collections::HashSet;

use gwc::simt::backend::BackendKind;
use gwc::simt::decode::Fusion;
use gwc::simt::exec::Device;
use gwc::simt::kernel::Kernel;
use gwc::simt::kgen;
use gwc::simt::trace::TraceHasher;
use gwc::workloads::{registry, Scale};

fn simd_device(fusion: bool) -> Device {
    let mut d = Device::with_backend(BackendKind::Simd);
    d.set_fusion(fusion);
    d
}

/// Fusion kinds present in a kernel's side table.
fn fusion_kinds(kernel: &Kernel, into: &mut HashSet<&'static str>) -> usize {
    let dec = kernel.decoded();
    for pc in 0..dec.len() {
        match dec.fused(pc) {
            Some(Fusion::CmpBranch) => {
                into.insert("cmp+branch");
            }
            Some(Fusion::MulAdd) => {
                into.insert("mul+add");
            }
            Some(Fusion::LdCvt) => {
                into.insert("ld+cvt");
            }
            None => {}
        }
    }
    dec.fusion_count()
}

/// Every registry launch replayed with fusion on and off: identical
/// trace digests, stats and final memory images.
#[test]
fn registry_fusion_on_off_equivalent() {
    let mut on_wl = registry::all_workloads(11);
    let mut off_wl = registry::all_workloads(11);
    let mut fused_total = 0usize;
    let mut kinds = HashSet::new();

    for (wa, wb) in on_wl.iter_mut().zip(off_wl.iter_mut()) {
        let name = wa.meta().name;
        let mut da = simd_device(true);
        let mut db = simd_device(false);
        let specs_a = wa.setup(&mut da, Scale::Tiny).expect("setup fusion-on");
        let specs_b = wb.setup(&mut db, Scale::Tiny).expect("setup fusion-off");

        for (la, lb) in specs_a.iter().zip(specs_b.iter()) {
            fused_total += fusion_kinds(&la.kernel, &mut kinds);
            let mut ha = TraceHasher::new();
            let mut hb = TraceHasher::new();
            let sa = da
                .launch_observed(&la.kernel, &la.config, &la.args, &mut ha)
                .expect("fusion-on launch");
            let sb = db
                .launch_observed(&lb.kernel, &lb.config, &lb.args, &mut hb)
                .expect("fusion-off launch");
            assert_eq!(sa, sb, "{name}/{}: launch stats", la.label);
            assert_eq!(
                ha.digest(),
                hb.digest(),
                "{name}/{}: trace digest",
                la.label
            );
        }

        assert_eq!(da.global_image(), db.global_image(), "{name}: memory image");
        wa.verify(&da).expect("fusion-on verify");
        wb.verify(&db).expect("fusion-off verify");
    }

    assert!(
        fused_total > 0,
        "registry kernels produced no fused pairs — fusion detection is dead"
    );
}

/// Generated kernels replayed with fusion on and off; the generator
/// deliberately emits fusable idioms (`mul;add`, `ld;cvt`, `cmp;bra`),
/// so all three kinds must occur across the sweep.
#[test]
fn generated_fusion_on_off_equivalent_and_all_kinds_occur() {
    let mut kinds = HashSet::new();
    let mut fused_total = 0usize;

    for seed in 0..96u64 {
        let gk = kgen::generate_seeded(seed).expect("kernel generation");
        fused_total += fusion_kinds(&gk.kernel, &mut kinds);

        let mut da = simd_device(true);
        let mut db = simd_device(false);
        let args_a = gk.alloc_args(&mut da);
        let args_b = gk.alloc_args(&mut db);
        let mut ha = TraceHasher::new();
        let mut hb = TraceHasher::new();
        let sa = da
            .launch_observed(&gk.kernel, &gk.config, &args_a.args, &mut ha)
            .expect("fusion-on launch");
        let sb = db
            .launch_observed(&gk.kernel, &gk.config, &args_b.args, &mut hb)
            .expect("fusion-off launch");
        assert_eq!(sa, sb, "seed {seed}: launch stats");
        assert_eq!(ha.digest(), hb.digest(), "seed {seed}: trace digest");
        assert_eq!(
            da.global_image(),
            db.global_image(),
            "seed {seed}: memory image"
        );
    }

    assert!(fused_total > 50, "only {fused_total} fused pairs in sweep");
    for kind in ["cmp+branch", "mul+add", "ld+cvt"] {
        assert!(kinds.contains(kind), "no {kind} fusion in generated sweep");
    }
}

/// Fusion must also be invisible to the scalar reference backend: the
/// scalar engine ignores the fusion table entirely, so a scalar device
/// with fusion "enabled" still matches one with it disabled.
#[test]
fn scalar_backend_ignores_fusion_flag() {
    for seed in [3u64, 17, 42] {
        let gk = kgen::generate_seeded(seed).expect("kernel generation");
        let mut da = Device::with_backend(BackendKind::Scalar);
        da.set_fusion(true);
        let mut db = Device::with_backend(BackendKind::Scalar);
        db.set_fusion(false);
        let args_a = gk.alloc_args(&mut da);
        let args_b = gk.alloc_args(&mut db);
        let mut ha = TraceHasher::new();
        let mut hb = TraceHasher::new();
        let sa = da
            .launch_observed(&gk.kernel, &gk.config, &args_a.args, &mut ha)
            .expect("launch");
        let sb = db
            .launch_observed(&gk.kernel, &gk.config, &args_b.args, &mut hb)
            .expect("launch");
        assert_eq!(sa, sb, "seed {seed}: launch stats");
        assert_eq!(ha.digest(), hb.digest(), "seed {seed}: trace digest");
        assert_eq!(da.global_image(), db.global_image(), "seed {seed}: memory");
    }
}
