//! Incremental matrix assembly: the per-workload column-block cache
//! must be invisible in the output (bit-identical to an uncached cold
//! assembly) while its hit/miss counters prove columns are actually
//! being reused — including the headline scenario, *appending* a
//! workload to an already-cached study without recomputing the
//! existing columns.
//!
//! Everything lives in one `#[test]`: the phases share cache
//! directories and the global metrics recorder, so they must not run
//! concurrently with each other.

use std::path::PathBuf;
use std::sync::Arc;

use gwc::core::pipeline::{MatrixArtifact, MatrixStage, PipelineConfig, Stage, StudyStage};
use gwc::obs::metrics::MetricsRecorder;
use gwc::workloads::Scale;

fn config(cache: Option<PathBuf>, exclude: Option<&'static str>) -> PipelineConfig {
    let mut cfg = PipelineConfig {
        cache_dir: cache,
        exclude_workload: exclude,
        ..PipelineConfig::default()
    };
    // Tiny, unverified: this test is about assembly plumbing, not
    // characterization fidelity.
    cfg.study.scale = Scale::Tiny;
    cfg.study.verify = false;
    cfg
}

/// Runs study + matrix stages under a fresh metrics recorder, returning
/// the matrix artifact and the (hits, misses) the assembly recorded.
fn assemble(cfg: &PipelineConfig) -> (MatrixArtifact, (u64, u64)) {
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc::obs::install(rec.clone());
    let study = StudyStage::run(cfg, ());
    let matrix = MatrixStage::run(cfg, &study);
    drop(guard);
    let snap = rec.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    (
        matrix,
        (counter("matrix.cache.hits"), counter("matrix.cache.misses")),
    )
}

/// Bit-level equality: `==` on f64 would also accept 0.0 == -0.0.
fn assert_identical(label: &str, a: &MatrixArtifact, b: &MatrixArtifact) {
    assert_eq!(a.labels, b.labels, "{label}: labels");
    assert_eq!(a.matrix.shape(), b.matrix.shape(), "{label}: shape");
    for r in 0..a.matrix.rows() {
        for (c, (x, y)) in a.matrix.row(r).iter().zip(b.matrix.row(r)).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}: cell ({r},{c}) differs: {x} vs {y}"
            );
        }
    }
}

#[test]
fn matrix_assembly_is_incremental_and_byte_identical() {
    let base = std::env::temp_dir().join(format!("gwc-inc-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");

    // Cold: every block is computed and stored.
    let cold_cfg = config(Some(cache.clone()), Some("vector_add"));
    let (cold, (hits, misses)) = assemble(&cold_cfg);
    let workloads = {
        // One block per post-exclusion workload; records are contiguous
        // per workload, so consecutive dedup counts them.
        let mut names: Vec<&str> = cold
            .labels
            .iter()
            .map(|l| l.split('/').next().unwrap())
            .collect();
        names.dedup();
        names.len() as u64
    };
    assert_eq!(
        (hits, misses),
        (0, workloads),
        "cold run computes every block"
    );

    // Uncached reference: the cache must be invisible in the output.
    let (uncached, (h, m)) = assemble(&config(None, Some("vector_add")));
    assert_eq!((h, m), (0, 0), "no cache, no counters");
    assert_identical("cold vs uncached", &cold, &uncached);

    // Warm: identical bytes, every block reused, nothing recomputed.
    let (warm, counters) = assemble(&cold_cfg);
    assert_eq!(counters, (workloads, 0), "warm run reuses every block");
    assert_identical("warm vs cold", &warm, &cold);

    // Append: widening the population (un-excluding `vector_add`) must
    // reuse every existing column block and compute only the new one.
    let append_cfg = config(Some(cache.clone()), None);
    let (appended, counters) = assemble(&append_cfg);
    assert_eq!(
        counters,
        (workloads, 1),
        "append recomputes only the appended workload's block"
    );
    assert_eq!(appended.labels.len(), cold.labels.len() + 1);

    // ... and the appended result is byte-identical to a cold run of
    // the widened population in a fresh cache.
    let fresh = base.join("fresh");
    let (reference, counters) = assemble(&config(Some(fresh), None));
    assert_eq!(counters, (0, workloads + 1), "reference run is fully cold");
    assert_identical("append vs cold reference", &appended, &reference);

    let _ = std::fs::remove_dir_all(&base);
}
