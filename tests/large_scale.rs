//! The `--scale large` study tier: the replicated population must be a
//! strict extension of the standard study (base records bit-identical,
//! replicas appended after), and a profile cache warmed by a standard
//! run must fully cover the base of a large run — that coverage is what
//! makes warm large-scale regens cheap.
//!
//! One `#[test]`: the phases share a cache directory and the global
//! metrics recorder.

use std::sync::Arc;

use gwc::core::study::{Study, StudyConfig};
use gwc::obs::metrics::MetricsRecorder;
use gwc::workloads::registry::LARGE_REPLICAS;
use gwc::workloads::{Scale, StudyScale};

const REGISTRY_SIZE: usize = 26;

fn run_counted(cfg: &StudyConfig, cache: &std::path::Path) -> (Study, u64, u64) {
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc::obs::install(rec.clone());
    let study =
        Study::run_threads_cached(cfg, 1, Some(&gwc::characterize::ProfileCache::new(cache)))
            .expect("study runs");
    drop(guard);
    let snap = rec.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    (study, counter("cache.hits"), counter("cache.misses"))
}

#[test]
fn large_tier_extends_the_standard_study_bit_identically() {
    let base = std::env::temp_dir().join(format!("gwc-large-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create temp dir");
    let cache = base.join("cache");

    let standard_cfg = StudyConfig {
        scale: Scale::Tiny,
        verify: false,
        ..StudyConfig::default()
    };
    let large_cfg = StudyConfig {
        study_scale: StudyScale::Large,
        ..standard_cfg
    };

    // Standard run populates the cache: one miss per registry workload.
    let (standard, hits, misses) = run_counted(&standard_cfg, &cache);
    assert_eq!((hits, misses), (0, REGISTRY_SIZE as u64));

    // The large population is the registry plus LARGE_REPLICAS sweeps;
    // the standard-warmed cache covers exactly the base — replicas have
    // distinct names, seeds and scales, so they must all simulate.
    let (large, hits, misses) = run_counted(&large_cfg, &cache);
    let names = large.workload_names();
    assert_eq!(names.len(), REGISTRY_SIZE * (1 + LARGE_REPLICAS as usize));
    assert_eq!(hits, REGISTRY_SIZE as u64, "base rides the warm cache");
    assert_eq!(
        misses,
        (REGISTRY_SIZE as u64) * LARGE_REPLICAS,
        "every replica is a distinct instance"
    );
    assert!(
        names[REGISTRY_SIZE..].iter().all(|n| n.contains('#')),
        "replicas are name-tagged"
    );

    // Base records are bit-identical to the standard study's — the
    // large tier *extends* the population, it never perturbs it.
    let n = standard.records().len();
    assert!(large.records().len() > n);
    for (s, l) in standard.records().iter().zip(&large.records()[..n]) {
        assert_eq!(s.label(), l.label(), "base record order");
        assert_eq!(s.fingerprint, l.fingerprint, "{}: fingerprint", s.label());
        let same = s
            .profile
            .values()
            .iter()
            .zip(l.profile.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            same,
            "{}: base profile diverged under large tier",
            s.label()
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
