//! Checks of the falsifiable qualitative claims in the paper's abstract,
//! measured on our reproduction (Small scale, seed 7 — the study
//! configuration EXPERIMENTS.md reports).
//!
//! The abstract claims:
//!
//! 1. "Similarity Score, Scan of Large Arrays, MUMmerGPU, Hybrid Sort, and
//!    Nearest Neighbor workloads exhibit relatively large variation in
//!    branch divergence characteristics compared to others."
//! 2. "Memory coalescing behavior is diverse in Scan of Large Arrays,
//!    K-Means, Similarity Score and Parallel Reduction."
//! 3. "...workloads such as Similarity Score, Parallel Reduction, and Scan
//!    of Large Arrays show diverse characteristics in different workload
//!    spaces."
//!
//! We check rank-level statements ("relatively large ... compared to
//! others" = above the population median), not absolute numbers.

use std::sync::OnceLock;

use gwc::core::study::{Study, StudyConfig};
use gwc::core::subspace::{Subspace, SubspaceAnalysis};
use gwc::workloads::Scale;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Study::run(&StudyConfig {
            seed: 7,
            scale: Scale::Small,
            verify: true,
            ..StudyConfig::default()
        })
        .expect("study runs")
        .without_workload("vector_add")
    })
}

fn assert_top_half(analysis: &SubspaceAnalysis, names: &[&str]) {
    let half = analysis.variation.len() / 2;
    for name in names {
        let rank = analysis
            .rank_of(name)
            .unwrap_or_else(|| panic!("{name} missing from ranking"));
        assert!(
            rank < half,
            "{name} ranks {rank} of {} in {} (expected top half): {:?}",
            analysis.variation.len(),
            analysis.subspace.name,
            analysis.variation
        );
    }
}

#[test]
fn claim_branch_divergence_variation() {
    let analysis = SubspaceAnalysis::fit(study(), Subspace::divergence()).unwrap();
    assert_top_half(
        &analysis,
        &[
            "similarity_score",
            "scan_large_arrays",
            "mummer_gpu",
            "hybrid_sort",
            "nearest_neighbor",
        ],
    );
}

#[test]
fn claim_memory_coalescing_diversity() {
    let analysis = SubspaceAnalysis::fit(study(), Subspace::coalescing()).unwrap();
    assert_top_half(
        &analysis,
        &[
            "scan_large_arrays",
            "kmeans",
            "similarity_score",
            "parallel_reduction",
        ],
    );
}

#[test]
fn claim_multi_space_diversity() {
    // The three named workloads are diverse in BOTH subspaces.
    let div = SubspaceAnalysis::fit(study(), Subspace::divergence()).unwrap();
    let coal = SubspaceAnalysis::fit(study(), Subspace::coalescing()).unwrap();
    for name in [
        "similarity_score",
        "parallel_reduction",
        "scan_large_arrays",
    ] {
        for a in [&div, &coal] {
            let rank = a.rank_of(name).expect("present");
            assert!(
                rank < a.variation.len() * 2 / 3,
                "{name} ranks {rank} in {}",
                a.subspace.name
            );
        }
    }
}
