//! End-to-end integration tests across all crates: the full study runs,
//! verifies, reduces, clusters and evaluates — deterministically.

use gwc::core::analysis::ClusterAnalysis;
use gwc::core::diversity::suite_diversity;
use gwc::core::eval::{evaluate_subset, random_subset_errors};
use gwc::core::reduce::ReducedSpace;
use gwc::core::study::{Study, StudyConfig};
use gwc::stats::describe::mean;
use gwc::timing::sweep::default_design_space;
use gwc::timing::GpuConfig;
use gwc::workloads::Scale;

fn tiny_study() -> Study {
    Study::run(&StudyConfig {
        seed: 7,
        scale: Scale::Tiny,
        verify: true,
        ..StudyConfig::default()
    })
    .expect("study runs and verifies")
}

#[test]
fn full_study_verifies_every_workload() {
    let study = tiny_study();
    // 26 workloads, several multi-kernel: expect a healthy population.
    assert!(study.records().len() >= 35, "{}", study.records().len());
    assert_eq!(study.workload_names().len(), 26);
}

#[test]
fn study_is_deterministic() {
    let a = tiny_study();
    let b = tiny_study();
    assert_eq!(a.labels(), b.labels());
    let (ma, mb) = (a.matrix(), b.matrix());
    assert_eq!(ma, mb);
}

#[test]
fn characteristics_are_finite_and_in_range() {
    let study = tiny_study();
    let m = study.matrix();
    m.check_finite().expect("all characteristics finite");
    for (r, record) in study.records().iter().enumerate() {
        let p = &record.profile;
        for name in [
            "div_simd_activity",
            "div_branch_frac",
            "loc_cold_frac",
            "coal_unit_stride_frac",
            "coal_broadcast_frac",
            "coal_scatter_frac",
            "share_inter_warp",
            "share_inter_block",
        ] {
            let v = p.get(name);
            assert!(
                (0.0..=1.0).contains(&v),
                "{} {name} = {v} out of [0,1]",
                study.labels()[r]
            );
        }
        assert!(p.get("ilp_dataflow") >= 1.0 - 1e-9, "ILP >= 1");
        assert!(p.get("smem_bank_conflict") >= 1.0 - 1e-9);
        assert!(p.get("coal_segments_per_access") <= 32.0 + 1e-9);
    }
}

#[test]
fn reduction_collapses_correlated_dimensions() {
    let study = tiny_study();
    let space = ReducedSpace::fit(&study.matrix(), 0.9).unwrap();
    assert!(
        space.kept() < space.varying_dims(),
        "PCA must reduce dimensionality: {} PCs of {} dims",
        space.kept(),
        space.varying_dims()
    );
    assert!(space.variance_explained() >= 0.9);
}

#[test]
fn clustering_produces_usable_representatives() {
    let study = tiny_study().without_workload("vector_add");
    let space = ReducedSpace::fit(&study.matrix(), 0.9).unwrap();
    let analysis = ClusterAnalysis::fit(space.scores(), 12, 7).unwrap();
    let k = analysis.k();
    assert!(k >= 2, "more than one behaviour class exists");
    assert!(k < study.records().len(), "clustering must compress");
    assert_eq!(analysis.representatives().len(), k);
}

#[test]
fn representatives_beat_random_subsets_on_average() {
    let study = tiny_study().without_workload("vector_add");
    let space = ReducedSpace::fit(&study.matrix(), 0.9).unwrap();
    let analysis = ClusterAnalysis::fit(space.scores(), 12, 7).unwrap();
    let reps = analysis.representatives();
    let baseline = GpuConfig::baseline();
    let configs = default_design_space();
    let rep_err = evaluate_subset(&study, &baseline, &configs, reps).mean_error();
    let rand_errs = random_subset_errors(&study, &baseline, &configs, reps.len(), 20, 99);
    let rand_mean = mean(&rand_errs);
    assert!(
        rep_err < rand_mean,
        "representatives {rep_err:.4} should beat random mean {rand_mean:.4}"
    );
}

#[test]
fn every_suite_contributes_to_the_space() {
    let study = tiny_study().without_workload("vector_add");
    let space = ReducedSpace::fit(&study.matrix(), 0.9).unwrap();
    let div = suite_diversity(&study, space.scores());
    for d in div {
        assert!(d.kernels >= 2, "{} too small", d.suite.name());
        assert!(d.mean_reach > 0.0);
    }
}
