//! Predecode equivalence suite: the cached µop stream must be a
//! faithful lowering of every kernel the registry can produce.
//!
//! The interpreter executes `DecodedKernel` µops, but the observers'
//! events and the validator still speak in terms of the source `Instr`
//! stream. These tests pin the correspondence over the *full* workload
//! registry (every kernel of every workload at Tiny scale), not just
//! hand-built kernels:
//!
//! * side tables (`class` / `dst` / `srcs`) equal what the `Instr` API
//!   reports per pc — the trace events observers see are unchanged;
//! * each µop is the right lowering of its source instruction — same
//!   variant shape, same register ids, immediates carried as
//!   `Value::to_bits`, branch reconvergence pc baked in from the
//!   kernel's IPDOM analysis.

use gwc::simt::decode::{Src, Uop};
use gwc::simt::exec::Device;
use gwc::simt::instr::{Instr, Operand};
use gwc::simt::kernel::Kernel;
use gwc::workloads::{registry, LaunchSpec, Scale};

/// Collects every launch of every registry workload at Tiny scale.
fn all_launches() -> Vec<(String, LaunchSpec)> {
    let mut specs = Vec::new();
    for workload in &mut registry::all_workloads(7) {
        let mut device = Device::new();
        let launches = workload
            .setup(&mut device, Scale::Tiny)
            .expect("workload setup");
        let name = workload.meta().name;
        specs.extend(
            launches
                .into_iter()
                .map(|l| (format!("{name}/{}", l.label), l)),
        );
    }
    assert!(
        specs.len() > 20,
        "registry looks truncated: {}",
        specs.len()
    );
    specs
}

/// Does `src` carry the same operand as `op`? (Registers by id,
/// immediates by bit pattern, params and special registers by index.)
fn src_matches(src: &Src, op: &Operand) -> bool {
    match (src, op) {
        (Src::Reg(r), Operand::Reg(reg)) => *r == reg.0,
        (Src::Imm(bits), Operand::Imm(v)) => *bits == v.to_bits(),
        (Src::Param(i), Operand::Param(p)) => i == p,
        (Src::Sreg(s), Operand::Sreg(o)) => s == o,
        _ => false,
    }
}

fn check_kernel(label: &str, kernel: &Kernel) {
    let dec = kernel.decoded();
    let instrs = kernel.instrs();
    assert_eq!(dec.len(), instrs.len(), "{label}: µop count");
    for (pc, ins) in instrs.iter().enumerate() {
        let at = format!("{label} pc {pc}");
        // Side tables reproduce the Instr API verbatim.
        let dst = ins.dst_reg();
        assert_eq!(
            dec.class(pc),
            ins.class(dst.map(|r| kernel.reg_type(r))),
            "{at}: class"
        );
        assert_eq!(dec.dst(pc), dst, "{at}: dst");
        assert_eq!(dec.srcs(pc), ins.src_regs().as_slice(), "{at}: srcs");
        // The µop is the matching lowering of the source instruction.
        let uop = &dec.uops()[pc];
        match (uop, ins) {
            (
                Uop::Bin { dst, a, b, .. },
                Instr::Bin {
                    dst: d,
                    a: sa,
                    b: sb,
                    ..
                },
            )
            | (
                Uop::Cmp { dst, a, b, .. },
                Instr::Cmp {
                    dst: d,
                    a: sa,
                    b: sb,
                    ..
                },
            ) => {
                assert_eq!(*dst, d.0, "{at}: dst reg");
                assert!(src_matches(a, sa) && src_matches(b, sb), "{at}: operands");
            }
            (Uop::Un { dst, a, .. }, Instr::Un { dst: d, a: sa, .. }) => {
                assert_eq!(*dst, d.0, "{at}: dst reg");
                assert!(src_matches(a, sa), "{at}: operand");
            }
            (
                Uop::Mad { dst, a, b, c, .. },
                Instr::Mad {
                    dst: d,
                    a: sa,
                    b: sb,
                    c: sc,
                },
            ) => {
                assert_eq!(*dst, d.0, "{at}: dst reg");
                assert!(
                    src_matches(a, sa) && src_matches(b, sb) && src_matches(c, sc),
                    "{at}: operands"
                );
            }
            (
                Uop::Sel { dst, pred, a, b },
                Instr::Sel {
                    dst: d,
                    pred: p,
                    a: sa,
                    b: sb,
                },
            ) => {
                assert_eq!((*dst, *pred), (d.0, p.0), "{at}: regs");
                assert!(src_matches(a, sa) && src_matches(b, sb), "{at}: operands");
            }
            (Uop::Mov { dst, src }, Instr::Mov { dst: d, src: s }) => {
                assert_eq!(*dst, d.0, "{at}: dst reg");
                assert!(src_matches(src, s), "{at}: operand");
            }
            (Uop::Cvt { dst, src, .. }, Instr::Cvt { dst: d, src: s }) => {
                assert_eq!(*dst, d.0, "{at}: dst reg");
                assert!(src_matches(src, s), "{at}: operand");
            }
            (
                Uop::Ld {
                    dst,
                    space,
                    base,
                    offset,
                },
                Instr::Ld {
                    dst: d,
                    space: sp,
                    addr,
                },
            ) => {
                assert_eq!((*dst, *space, *offset), (d.0, *sp, addr.offset), "{at}");
                assert!(src_matches(base, &addr.base), "{at}: base");
            }
            (
                Uop::St {
                    space,
                    base,
                    offset,
                    src,
                },
                Instr::St {
                    space: sp,
                    addr,
                    src: s,
                },
            ) => {
                assert_eq!((*space, *offset), (*sp, addr.offset), "{at}");
                assert!(src_matches(base, &addr.base) && src_matches(src, s), "{at}");
            }
            (
                Uop::Atom {
                    dst,
                    space,
                    base,
                    offset,
                    src,
                    compare,
                    ..
                },
                Instr::Atom {
                    dst: d,
                    space: sp,
                    addr,
                    src: s,
                    compare: cmp,
                    ..
                },
            ) => {
                assert_eq!(*dst, d.map(|r| r.0), "{at}: dst reg");
                assert_eq!((*space, *offset), (*sp, addr.offset), "{at}");
                assert!(src_matches(base, &addr.base) && src_matches(src, s), "{at}");
                match (compare, cmp) {
                    (None, None) => {}
                    (Some(c), Some(sc)) => assert!(src_matches(c, sc), "{at}: compare"),
                    _ => panic!("{at}: compare presence mismatch"),
                }
            }
            (Uop::Bar, Instr::Bar) | (Uop::Ret, Instr::Ret) => {}
            (
                Uop::Jump { target },
                Instr::Bra {
                    target: t,
                    cond: None,
                },
            ) => {
                assert_eq!(*target as usize, *t, "{at}: jump target");
            }
            (
                Uop::Branch {
                    target,
                    reg,
                    negate,
                    rpc,
                },
                Instr::Bra {
                    target: t,
                    cond: Some(c),
                },
            ) => {
                assert_eq!(*target as usize, *t, "{at}: branch target");
                assert_eq!((*reg, *negate), (c.reg.0, c.negate), "{at}: condition");
                assert_eq!(
                    *rpc as usize,
                    kernel.reconvergence_pc(pc).expect("branch has rpc"),
                    "{at}: reconvergence pc"
                );
            }
            (uop, ins) => panic!("{at}: µop {uop:?} does not correspond to {ins:?}"),
        }
    }
}

#[test]
fn every_registry_kernel_decodes_faithfully() {
    for (label, spec) in all_launches() {
        check_kernel(&label, &spec.kernel);
    }
}

/// Early-exit kernel covering `Ret`, which no registry kernel emits
/// explicitly (their bodies fall off the end instead).
fn ret_kernel() -> gwc::simt::kernel::Kernel {
    use gwc::simt::builder::KernelBuilder;
    use gwc::simt::instr::Value;
    let mut b = KernelBuilder::new("early_ret");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let p = b.lt_u32(i, Value::U32(4));
    b.if_(p, |b| b.ret());
    let oi = b.index(out, i, 4);
    b.st_global_u32(oi, i);
    b.build().expect("ret kernel builds")
}

#[test]
fn every_uop_variant_is_exercised() {
    // If coverage stopped reaching a µop shape, the equivalence suite
    // above would silently lose teeth — fail loudly instead. The
    // registry covers everything except an explicit `Ret`.
    let ret = ret_kernel();
    check_kernel("early_ret", &ret);
    let mut kernels: Vec<Kernel> = vec![ret];
    kernels.extend(all_launches().into_iter().map(|(_, spec)| spec.kernel));
    let mut seen = [false; 14];
    for kernel in &kernels {
        for uop in kernel.decoded().uops() {
            let idx = match uop {
                Uop::Bin { .. } => 0,
                Uop::Un { .. } => 1,
                Uop::Mad { .. } => 2,
                Uop::Cmp { .. } => 3,
                Uop::Sel { .. } => 4,
                Uop::Mov { .. } => 5,
                Uop::Cvt { .. } => 6,
                Uop::Ld { .. } => 7,
                Uop::St { .. } => 8,
                Uop::Atom { .. } => 9,
                Uop::Bar => 10,
                Uop::Jump { .. } => 11,
                Uop::Branch { .. } => 12,
                Uop::Ret => 13,
            };
            seen[idx] = true;
        }
    }
    let missing: Vec<usize> = (0..14).filter(|&i| !seen[i]).collect();
    assert!(
        missing.is_empty(),
        "µop variants never decoded: {missing:?}"
    );
}
