//! Profile serialization and the persistent cache, exercised against the
//! real workload population: every registry kernel's profile must
//! round-trip through the on-disk format bit-identically, and a cached
//! study must be indistinguishable from a fresh one.

use std::path::PathBuf;

use gwc::characterize::cache::ProfileCache;
use gwc::characterize::serialize::{profile_from_json, profile_to_json};
use gwc::core::study::{Study, StudyConfig};
use gwc::obs::json;
use gwc::workloads::Scale;

fn tiny_config() -> StudyConfig {
    StudyConfig {
        seed: 7,
        scale: Scale::Tiny,
        verify: true,
        ..StudyConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gwc-profile-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_registry_kernel_round_trips_bit_identically() {
    let study = Study::run(&tiny_config()).expect("study runs and verifies");
    assert!(study.records().len() >= 35, "{}", study.records().len());
    for record in study.records() {
        let text = profile_to_json(&record.profile).render();
        let doc = json::parse(&text).expect("serialized profile parses");
        let back =
            profile_from_json(&doc).unwrap_or_else(|| panic!("{} deserializes", record.label()));
        assert_eq!(back.name(), record.profile.name(), "{}", record.label());
        assert_eq!(back.raw(), record.profile.raw(), "{}", record.label());
        assert_eq!(back.stats(), record.profile.stats(), "{}", record.label());
        for (i, (a, b)) in record
            .profile
            .values()
            .iter()
            .zip(back.values())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} characteristic {i}: {a} != {b}",
                record.label()
            );
        }
    }
}

#[test]
fn cached_study_is_bit_identical_to_fresh() {
    let dir = temp_dir("study");
    let cache = ProfileCache::new(&dir);
    let cold = Study::run_threads_cached(&tiny_config(), 1, Some(&cache))
        .expect("cold study runs and verifies");
    let warm = Study::run_threads_cached(&tiny_config(), 1, Some(&cache))
        .expect("warm study loads from cache");
    assert_eq!(cold.labels(), warm.labels());
    for (a, b) in cold.records().iter().zip(warm.records()) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.suite, b.suite);
        for (x, y) in a.profile.values().iter().zip(b.profile.values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{}", a.label());
        }
        assert_eq!(a.profile.raw(), b.profile.raw(), "{}", a.label());
        assert_eq!(a.profile.stats(), b.profile.stats(), "{}", a.label());
    }
    // And both match a run that never saw a cache.
    let uncached = Study::run(&tiny_config()).expect("uncached study runs");
    assert_eq!(uncached.matrix(), warm.matrix());
    assert_eq!(uncached.labels(), warm.labels());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_different_seed_misses_the_cache() {
    let dir = temp_dir("seed");
    let cache = ProfileCache::new(&dir);
    Study::run_threads_cached(&tiny_config(), 1, Some(&cache)).expect("seed 7 populates");
    let other = StudyConfig {
        seed: 8,
        ..tiny_config()
    };
    // Runs fresh (fingerprints differ) and must still verify.
    let study = Study::run_threads_cached(&other, 1, Some(&cache)).expect("seed 8 recomputes");
    assert!(study.records().len() >= 35);
    let _ = std::fs::remove_dir_all(&dir);
}
