//! Exact-vs-sketch observer cross-check over real kernels.
//!
//! The sketch tier trades exactness for bounded memory, but the trade
//! is *declared*: `gwc::characterize::sketch::bounds` states how far
//! each locality/sharing characteristic may drift from the exact
//! oracle. These tests hold the sketch to that contract over the whole
//! workload registry and over a broad sweep of generated kernels —
//! not just the synthetic streams its unit tests use — and pin the
//! properties the tier must preserve exactly:
//!
//! * every non-locality characteristic is bit-identical between tiers
//!   (the sketch replaces only the locality observer);
//! * locality/sharing characteristics stay within the declared bounds;
//! * the sketch study is thread-deterministic (sharded merge ==
//!   serial), like the exact tier;
//! * sketch observer memory is bounded: the exact tier's peak
//!   footprint-tracking bytes exceed the sketch's by >= 5x on the
//!   registry's biggest workloads.

use gwc::characterize::sketch::{bounds, ObserverTier};
use gwc::characterize::{schema, KernelProfile, Profiler};
use gwc::core::study::{Study, StudyConfig};
use gwc::simt::exec::Device;
use gwc::simt::kgen;

/// Characteristics owned by the locality observer — the only ones the
/// sketch tier may perturb, each with its declared absolute bound.
/// `shape_log_footprint` is checked separately (relative, in lines).
const LOCALITY_ABS_BOUNDS: [(&str, f64); 6] = [
    ("loc_reuse_le16", bounds::REUSE_CDF_ABS),
    ("loc_reuse_le256", bounds::REUSE_CDF_ABS),
    ("loc_reuse_le4096", bounds::REUSE_CDF_ABS),
    ("loc_cold_frac", bounds::COLD_FRAC_ABS),
    ("share_inter_warp", bounds::SHARING_ABS),
    ("share_inter_block", bounds::SHARING_ABS),
];

/// Asserts `sketch` matches `exact` under the sketch contract: bit
/// equality outside the locality group, declared bounds inside it.
fn assert_within_bounds(label: &str, exact: &KernelProfile, sketch: &KernelProfile) {
    let ex = exact.values();
    let sk = sketch.values();
    assert_eq!(ex.len(), sk.len(), "{label}: schema width");
    let loc_indices: Vec<usize> = LOCALITY_ABS_BOUNDS
        .iter()
        .map(|(name, _)| schema::index_of(name))
        .chain([schema::index_of("shape_log_footprint")])
        .collect();
    for i in 0..ex.len() {
        if !loc_indices.contains(&i) {
            assert!(
                ex[i].to_bits() == sk[i].to_bits(),
                "{label}: non-locality characteristic {} diverged: exact {} vs sketch {}",
                schema::SCHEMA[i].name,
                ex[i],
                sk[i],
            );
        }
    }
    for (name, bound) in LOCALITY_ABS_BOUNDS {
        let i = schema::index_of(name);
        let diff = (ex[i] - sk[i]).abs();
        assert!(
            diff <= bound,
            "{label}: {name} off by {diff:.4} (exact {:.4}, sketch {:.4}, bound {bound})",
            ex[i],
            sk[i],
        );
    }
    // The schema stores log2(footprint lines); the declared bound is
    // relative in *lines*, so compare in that domain.
    let i = schema::index_of("shape_log_footprint");
    let (ex_lines, sk_lines) = (ex[i].exp2(), sk[i].exp2());
    let rel = (ex_lines - sk_lines).abs() / ex_lines.max(1.0);
    assert!(
        rel <= bounds::FOOTPRINT_REL,
        "{label}: footprint off by {:.1}% (exact {ex_lines:.0} lines, sketch {sk_lines:.0} \
         lines, bound {:.0}%)",
        rel * 100.0,
        bounds::FOOTPRINT_REL * 100.0,
    );
}

fn study_config(tier: ObserverTier) -> StudyConfig {
    StudyConfig {
        observer_tier: tier,
        // Verification re-runs CPU references and is orthogonal to the
        // observer tier; skip it so the cross-study fits in test time.
        verify: false,
        ..StudyConfig::default()
    }
}

/// Every kernel of every registry workload: sketch characteristics stay
/// within the declared error bounds of the exact oracle, and everything
/// outside the locality group is bit-identical.
#[test]
fn registry_profiles_stay_within_sketch_bounds() {
    let exact = Study::run(&study_config(ObserverTier::Exact)).expect("exact study");
    let sketch = Study::run(&study_config(ObserverTier::Sketch)).expect("sketch study");
    let (ex, sk) = (exact.records(), sketch.records());
    assert_eq!(ex.len(), sk.len(), "tiers must profile the same kernels");
    assert!(ex.len() >= 26, "registry looks truncated: {}", ex.len());
    for (e, s) in ex.iter().zip(sk) {
        assert_eq!(e.label(), s.label(), "record order must match");
        assert_ne!(
            e.fingerprint,
            s.fingerprint,
            "{}: tiers must never share cache entries",
            e.label()
        );
        assert_within_bounds(&e.label(), &e.profile, &s.profile);
    }
}

/// A broad sweep of generated kernels (>= 100, spanning the generator's
/// knob space) holds the same contract: the bounds are properties of
/// the sketch, not of the registry's particular access patterns.
#[test]
fn generated_kernels_stay_within_sketch_bounds() {
    let mut checked = 0;
    for seed in 0..110u64 {
        let gk = kgen::generate_seeded(seed).expect("kernel generation");
        let mut profiles = Vec::new();
        for tier in [ObserverTier::Exact, ObserverTier::Sketch] {
            let mut dev = Device::new();
            let args = gk.alloc_args(&mut dev);
            let mut profiler = Profiler::with_tier(tier);
            dev.launch_observed(&gk.kernel, &gk.config, &args.args, &mut profiler)
                .expect("generated kernels always launch");
            profiles.push(profiler.finish(gk.kernel.name()));
        }
        assert_within_bounds(&format!("kgen seed {seed}"), &profiles[0], &profiles[1]);
        checked += 1;
    }
    assert!(checked >= 100, "sweep too small: {checked}");
}

/// The sketch tier keeps the study's cornerstone guarantee: sharded
/// parallel runs produce bit-identical records to the serial path.
#[test]
fn sketch_study_is_thread_deterministic() {
    let config = study_config(ObserverTier::Sketch);
    let serial = Study::run(&config).expect("serial study");
    for threads in [2, 4] {
        let parallel = Study::run_threads(&config, threads).expect("parallel study");
        assert_eq!(
            serial.records().len(),
            parallel.records().len(),
            "{threads} threads: record count"
        );
        for (s, p) in serial.records().iter().zip(parallel.records()) {
            assert_eq!(s.label(), p.label(), "{threads} threads: record order");
            let (sv, pv) = (s.profile.values(), p.profile.values());
            let same = sv.iter().zip(pv).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                same,
                "{threads} threads: {} diverged from the serial sketch run",
                s.label()
            );
        }
    }
}

/// The memory story itself. The exact locality observer's state grows
/// with the footprint (one entry per distinct 128-byte line); the
/// sketch's is capped. Registry workloads fit the exact observer
/// comfortably — the sketch exists for footprints that don't — so the
/// ratio is demonstrated on a scatter kernel whose every thread touches
/// its own line, the access shape that defeats per-line tracking.
/// `observer_bytes` is exactly the per-launch quantity the
/// `observer.bytes_peak` counter reports.
#[test]
fn sketch_tier_bounds_observer_memory() {
    use gwc::simt::builder::KernelBuilder;
    use gwc::simt::launch::LaunchConfig;

    // 1536 blocks x 256 threads, one 128-byte line per thread: a
    // 393216-line footprint (~48 MiB of distinct data).
    const THREADS: u32 = 1536 * 256;
    let mut b = KernelBuilder::new("footprint_stress");
    let out = b.param_u32("out");
    let i = b.global_tid_x();
    let addr = b.index(out, i, 128);
    b.st_global_u32(addr, i);
    let kernel = b.build().expect("stress kernel builds");
    let config = LaunchConfig::linear(THREADS, 256);

    let mut bytes = [0u64; 2];
    for (slot, tier) in [ObserverTier::Exact, ObserverTier::Sketch]
        .into_iter()
        .enumerate()
    {
        let mut dev = Device::new();
        let buf = dev.alloc_zeroed_u32(THREADS as usize * 32);
        let mut profiler = Profiler::with_tier(tier);
        dev.launch_observed(&kernel, &config, &[buf.arg()], &mut profiler)
            .expect("stress kernel launches");
        // Observers only grow, so end-of-launch state is the peak.
        bytes[slot] = profiler.observer_bytes();
    }
    let [exact, sketch] = bytes;
    assert!(
        exact >= 5 * sketch,
        "exact peak {exact}B is not >= 5x sketch peak {sketch}B"
    );
    // The sketch side is a hard cap, not merely "smaller than exact":
    // it must not scale with the 393k-line footprint.
    assert!(
        sketch < 1_000_000,
        "sketch observer state {sketch}B is not bounded"
    );
}
